"""Tests for the workload generators: corpus, pilot, events, ONI sweep."""

import random

import pytest

from repro.workloads.corpus import build_corpus
from repro.workloads.events import BlockingWave
from repro.workloads.oni import FIG2_CATEGORIES, OniSweep
from repro.workloads.pilot import PilotConfig, PilotStudy
from repro.simnet.world import World


class TestCorpus:
    def test_deterministic_in_seed(self):
        a = build_corpus(n_sites=50, seed=3)
        b = build_corpus(n_sites=50, seed=3)
        assert [s.hostname for s in a.sites] == [s.hostname for s in b.sites]
        c = build_corpus(n_sites=50, seed=4)
        assert [s.hostname for s in a.sites] != [s.hostname for s in c.sites]

    def test_category_mix_roughly_respected(self):
        corpus = build_corpus(n_sites=400, seed=1)
        porn = len(corpus.sites_in_category("porn"))
        assert 0.04 * 400 <= porn <= 0.2 * 400

    def test_zipf_sampling_prefers_top_ranks(self):
        corpus = build_corpus(n_sites=200, seed=2)
        rng = random.Random(9)
        top = sum(
            1 for _ in range(2000) if corpus.sample_site(rng).rank <= 20
        )
        assert top > 400  # far more than the uniform 10 %

    def test_materialize_creates_sites_and_cdns(self):
        corpus = build_corpus(n_sites=30, seed=5)
        world = World(seed=5)
        corpus.materialize(world)
        for site in corpus.sites[:5]:
            assert world.web.site_for(site.hostname) is not None
        for cdn in corpus.cdn_hostnames:
            cdn_site = world.web.site_for(cdn)
            assert cdn_site is not None
            assert cdn_site.page("/whatever/object.jpg") is not None

    def test_materialize_idempotent(self):
        corpus = build_corpus(n_sites=10, seed=5)
        world = World(seed=5)
        corpus.materialize(world)
        corpus.materialize(world)  # must not raise on duplicates

    def test_domains_in_categories(self):
        corpus = build_corpus(n_sites=100, seed=6)
        blocked = corpus.domains_in_categories(("porn", "political"))
        assert blocked
        assert all(
            any(cat in d for cat in ("porn", "political")) for d in blocked
        )


class TestPilotSmall:
    @pytest.fixture(scope="class")
    def report_and_study(self):
        study = PilotStudy(
            PilotConfig(
                seed=11,
                n_users=12,
                n_sites=200,
                requests_per_user=25,
                duration_days=20,
                n_ases=6,
            )
        )
        report = study.run()
        return report, study

    def test_all_users_registered(self, report_and_study):
        report, _study = report_and_study
        assert report.users == 12

    def test_blocked_urls_discovered(self, report_and_study):
        report, _study = report_and_study
        assert report.unique_blocked_urls > 10
        assert report.unique_blocked_domains > 5
        assert report.unique_ases == 6

    def test_blockpage_most_common_then_dns(self, report_and_study):
        """§7.4: block pages are the majority mechanism, DNS second."""
        report, _study = report_and_study
        assert report.urls_blockpage > report.urls_dns_blocked
        assert report.urls_dns_blocked > report.urls_tcp_timeout

    def test_multiple_block_types_observed(self, report_and_study):
        report, _study = report_and_study
        assert report.distinct_block_types >= 4

    def test_cdn_blocking_discovered_via_embedded_objects(self, report_and_study):
        report, _study = report_and_study
        assert report.cdn_domains_detected >= 1

    def test_updates_flow_to_server(self, report_and_study):
        report, study = report_and_study
        assert report.unique_updates >= report.unique_blocked_urls
        assert study.server.update_count == report.unique_updates


class TestBlockingWave:
    def test_wave_detects_all_five_events(self):
        wave = BlockingWave(seed=6, users_per_as=3)
        observations = wave.run()
        assert len(observations) == 5
        services = {(o.service, o.asn) for o in observations}
        assert ("Twitter", 38193) in services
        assert ("Twitter", 17557) in services
        assert sum(1 for o in observations if o.service == "Instagram") == 3

    def test_detection_lags_blocking_onset(self):
        wave = BlockingWave(seed=6, users_per_as=3)
        observations = wave.run()
        onsets = {
            (e.asn, "Twitter" if "twitter" in e.domain else "Instagram"): e.time
            for e in wave.events
        }
        for obs in observations:
            onset = onsets[(obs.asn, obs.service)]
            assert obs.detected_at >= onset
            # Users browse every ~30 min: detection within a few hours.
            assert obs.detected_at - onset < 6 * 3600.0

    def test_mechanism_labels_match_paper_vocabulary(self):
        wave = BlockingWave(seed=6, users_per_as=3)
        observations = wave.run()
        by_asn = {
            (o.asn, o.service): o.symptom for o in observations
        }
        assert by_asn[(38193, "Twitter")] == "HTTP_GET_TIMEOUT"
        assert by_asn[(17557, "Twitter")] == "HTTP_GET_BLOCKPAGE"
        for asn in (38193, 59257, 45773):
            assert by_asn[(asn, "Instagram")] == "DNS blocking"


class TestOniSweep:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        sweep = OniSweep(seed=17, domains_per_as=40)
        measured = sweep.run()
        return measured, sweep.ground_truth()

    def test_all_ases_measured(self, sweep_results):
        measured, truth = sweep_results
        assert set(measured) == set(truth)

    def test_fractions_sum_to_one(self, sweep_results):
        measured, _truth = sweep_results
        for asn, mix in measured.items():
            assert sum(mix.values()) == pytest.approx(1.0, abs=1e-6)

    def test_dominant_category_matches_ground_truth(self, sweep_results):
        measured, truth = sweep_results
        for asn in truth:
            expected = max(truth[asn], key=truth[asn].get)
            observed = max(measured[asn], key=measured[asn].get)
            assert observed == expected, f"AS{asn}: {measured[asn]}"

    def test_heterogeneity_across_ases(self, sweep_results):
        """The figure's point: mixes differ across ASes/countries."""
        measured, _truth = sweep_results
        dominants = {
            max(mix, key=mix.get) for mix in measured.values()
        }
        assert len(dominants) >= 3

    def test_bad_mix_rejected(self):
        from repro.workloads.oni import OniAsSpec

        with pytest.raises(ValueError):
            OniAsSpec(1, "X", (0.5, 0.5, 0.5, 0.0, 0.0))


class TestStaggeredRollout:
    def test_events_cover_all_pairs(self):
        import random

        from repro.workloads.events import staggered_rollout

        events = staggered_rollout(
            ["a.example", "b.example"], [1, 2, 3], start=100.0, lag=3600.0,
            rng=random.Random(4),
        )
        assert len(events) == 6
        assert {(e.asn, e.domain) for e in events} == {
            (asn, d) for asn in (1, 2, 3) for d in ("a.example", "b.example")
        }

    def test_per_as_lag_within_bounds_and_uneven(self):
        import random

        from repro.workloads.events import staggered_rollout

        events = staggered_rollout(
            ["a.example"], list(range(8)), start=0.0, lag=7200.0,
            rng=random.Random(9),
        )
        times = sorted(e.time for e in events)
        assert all(0.0 <= t <= 7200.0 for t in times)
        assert len(set(times)) > 1  # genuinely staggered

    def test_rollout_drives_blocking_wave(self):
        """A staggered directive replayed through the wave machinery: the
        global DB's first-detection times reflect the per-AS lag order."""
        import random

        from repro.workloads.events import BlockingWave, staggered_rollout

        wave = BlockingWave(seed=12, users_per_as=3, duration=30 * 3600.0)
        events = staggered_rollout(
            ["twitter.com"], list(wave.DEFAULT_ASNS), start=8 * 3600.0,
            lag=6 * 3600.0, mechanism="blockpage", rng=random.Random(2),
        )
        wave.build(events=events)
        observations = wave.run()
        assert len(observations) == len(wave.DEFAULT_ASNS)
        onset = {e.asn: e.time for e in events}
        for obs in observations:
            assert obs.detected_at >= onset[obs.asn]
            assert obs.symptom == "HTTP_GET_BLOCKPAGE"
