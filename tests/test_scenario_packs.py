"""Every shipped scenario pack must run green through the
ScenarioRunner — and a deliberately-wrong expectation must fail with a
readable diff (the packs are executable claims, so both directions of
the check matter)."""

import pytest

from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    load_spec,
    shipped_packs,
)
from repro.scenarios.spec import load_toml_file

PACKS = dict(shipped_packs())
EXPECTED_PACKS = {
    "low-penetration-country",
    "rolling-wave",
    "sybil-flood",
    "vantage-disagreement",
}


def test_the_four_packs_ship():
    assert EXPECTED_PACKS <= set(PACKS)


@pytest.mark.parametrize("name", sorted(PACKS))
def test_pack_runs_green(name):
    outcome = ScenarioRunner().run(load_spec(PACKS[name]))
    report = outcome.report
    assert report.checks, f"{name} declares no expectations"
    assert report.ok, f"{name} failed:\n{report.diff()}"
    rendered = report.render()
    assert "PASS" in rendered and name in rendered


def _sabotage(data):
    """Flip one expectation in a loaded pack dict so it must fail;
    returns a human label of what was broken."""
    expect = data["expect"]
    if expect.get("verdict"):
        verdict = expect["verdict"][0]
        verdict["status"] = (
            "not-blocked" if verdict["status"] == "blocked" else "blocked"
        )
        return f"verdict for {verdict['url']} @ AS{verdict['asn']}"
    if expect.get("detection"):
        detection = expect["detection"][0]
        detection["within"] = 1.0  # nobody detects within a second
        return f"detection deadline for {detection['domain']}"
    if expect.get("fleet"):
        expect["fleet"]["max_convergence"] = 0.001
        return "fleet convergence bound"
    if expect.get("reputation"):
        reputation = expect["reputation"]
        reputation["flagged_groups"] = list(
            reputation.get("flagged_groups", [])
        ) + list(reputation.get("clean_groups", []))
        reputation["clean_groups"] = []
        return "reputation flags (honest group demanded flagged)"
    raise AssertionError("pack declares no expectations to sabotage")


@pytest.mark.parametrize("name", sorted(PACKS))
def test_wrong_expectation_fails_with_readable_diff(name):
    data = load_toml_file(PACKS[name])
    broken = _sabotage(data)
    spec = ScenarioSpec.from_dict(data)

    outcome = ScenarioRunner().run(spec)
    report = outcome.report
    assert not report.ok, f"sabotaged {broken} but {name} still passed"

    diff = report.diff()
    assert "expected:" in diff and "observed:" in diff
    # The diff must point at the failing check, not just say "failed".
    (first, *_rest) = report.failures
    assert first.subject in diff
    rendered = report.render()
    assert "FAIL" in rendered and "PASS" not in rendered.splitlines()[0]
