"""UrlPrefixIndex invariants that any index optimization must preserve."""

from __future__ import annotations

from repro.core.aggregation import UrlPrefixIndex


def test_segment_boundary_a_vs_ab():
    # "/a" prefixes "/a/b" but NOT "/ab": matching is whole-segment.
    index = UrlPrefixIndex()
    index.add("http://site.example/a")
    assert index.longest_prefix("http://site.example/a/b") == \
        "http://site.example/a"
    assert index.longest_prefix("http://site.example/a") == \
        "http://site.example/a"
    assert index.longest_prefix("http://site.example/ab") is None
    assert index.longest_prefix("http://site.example/ab/c") is None


def test_longest_prefix_prefers_deepest_key():
    index = UrlPrefixIndex()
    index.add("http://site.example/")
    index.add("http://site.example/a")
    index.add("http://site.example/a/b")
    assert index.longest_prefix("http://site.example/a/b/c") == \
        "http://site.example/a/b"
    assert index.longest_prefix("http://site.example/a/x") == \
        "http://site.example/a"
    assert index.longest_prefix("http://site.example/zzz") == \
        "http://site.example/"


def test_origin_cleanup_after_last_remove():
    index = UrlPrefixIndex()
    index.add("http://one.example/x")
    index.add("http://one.example/y")
    index.add("http://two.example/z")
    assert len(index) == 3

    index.remove("http://one.example/x")
    assert len(index) == 2
    assert index.longest_prefix("http://one.example/y") is not None

    index.remove("http://one.example/y")
    # Last key for the origin: the origin bucket itself must be dropped,
    # not left as an empty dict that lookups keep probing.
    assert "http://one.example" not in index._by_origin
    assert len(index) == 1
    assert index.longest_prefix("http://one.example/y") is None
    assert index.keys_for_origin("http://one.example/y") == []

    # Removing an absent key (or from an absent origin) is a no-op.
    index.remove("http://one.example/x")
    index.remove("http://never.example/q")
    assert len(index) == 1


def test_empty_index_lookups():
    index = UrlPrefixIndex()
    assert len(index) == 0
    assert index.longest_prefix("http://site.example/a") is None
    assert index.exact("http://site.example/a") is None
    assert index.keys_for_origin("http://site.example/a") == []


def test_exact_vs_prefix_and_origin_isolation():
    index = UrlPrefixIndex()
    index.add("http://a.example/p")
    assert index.exact("http://a.example/p") == "http://a.example/p"
    assert index.exact("http://a.example/p/q") is None
    # Same path under another origin must not leak across buckets.
    assert index.longest_prefix("http://b.example/p/q") is None
