"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        yield env.timeout(2.5)
        return env.now

    assert env.run(until=env.process(proc())) == 4.0
    assert env.now == 4.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="hello")
        return got

    assert env.run(until=env.process(proc())) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer():
        value = yield env.process(inner())
        return value + 1

    assert env.run(until=env.process(outer())) == 43


def test_yield_from_composition():
    env = Environment()

    def inner():
        yield env.timeout(3)
        return "inner-done"

    def outer():
        value = yield from inner()
        return value

    assert env.run(until=env.process(outer())) == "inner-done"
    assert env.now == 3


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter():
        try:
            yield env.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(until=env.process(waiter())) == "caught boom"


def test_unhandled_process_failure_raises_at_run():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(failing())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_succeed_wakes_waiters_in_order():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(name):
        value = yield gate
        woken.append((name, value, env.now))

    env.process(waiter("a"))
    env.process(waiter("b"))

    def trigger():
        yield env.timeout(5)
        gate.succeed("go")

    env.process(trigger())
    env.run()
    assert woken == [("a", "go", 5), ("b", "go", 5)]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_any_of_returns_first():
    env = Environment()

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")
        result = yield env.any_of([fast, slow])
        return result

    result = env.run(until=env.process(proc()))
    assert list(result.values()) == ["fast"]
    assert env.now == 1


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        a = env.timeout(1, value="a")
        b = env.timeout(4, value="b")
        result = yield env.all_of([a, b])
        return sorted(result.values())

    assert env.run(until=env.process(proc())) == ["a", "b"]
    assert env.now == 4


def test_any_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        result = yield env.any_of([])
        return result

    assert env.run(until=env.process(proc())) == {}


def test_interrupt_cancels_wait():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append(("finished", env.now))
        except Interrupt as exc:
            log.append((f"interrupted:{exc.cause}", env.now))
            return "cancelled"

    def canceller(victim):
        yield env.timeout(2)
        victim.interrupt("lost-race")

    victim = env.process(sleeper())
    env.process(canceller(victim))
    env.run()
    # The interrupt was delivered at t=2; the stale timeout still drains the
    # queue at t=100 but nobody is woken by it.
    assert log == [("interrupted:lost-race", 2)]
    assert victim.value == "cancelled"


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1)
        return "done"

    def canceller(victim):
        yield env.timeout(5)
        victim.interrupt("too-late")

    victim = env.process(quick())
    env.process(canceller(victim))
    env.run()
    assert victim.value == "done"


def test_run_until_time():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=10.5)
    assert ticks == list(range(1, 11))
    assert env.now == 10.5


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(42)  # type: ignore[arg-type]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(name))
    env.run()
    assert order == ["first", "second", "third"]


def test_nested_any_of_with_processes():
    env = Environment()

    def worker(delay, tag):
        yield env.timeout(delay)
        return tag

    def racer():
        a = env.process(worker(3, "a"))
        b = env.process(worker(7, "b"))
        result = yield env.any_of([a, b])
        winner = list(result.values())[0]
        # The loser is still running; cancel it.
        b.interrupt("lost")
        return winner

    assert env.run(until=env.process(racer())) == "a"


def test_drained_queue_with_pending_event_errors():
    env = Environment()
    never = env.event()

    def waiter():
        yield never

    proc = env.process(waiter())
    with pytest.raises(SimulationError):
        env.run(until=proc)
