"""Interrupting a process that completes in the same timestep is a no-op.

The losing redundant request in selective redundancy (§4.3.1) cancels its
twin as soon as one copy finishes; when both land on the same simulated
timestep, the cancel must neither raise ``Interrupt`` into a generator
that already returned nor leak a stale entry in the kernel's queues.
"""

from __future__ import annotations

from repro.simnet.engine import Environment, Interrupt


def _drained(env):
    """All three scheduler lanes are empty after the run."""
    return not env._imm and env._pending is None and not env._queue


def _target(env, log):
    try:
        yield env.timeout(1.0)
    except Interrupt as exc:
        log.append(("interrupted", exc.cause))
        return "interrupted"
    log.append(("completed",))
    return "done"


def test_interrupt_after_same_step_completion_is_noop():
    # Target's timeout fires first at t=1 (created first, smaller eid);
    # the interrupter then cancels an already-finished process.
    env = Environment()
    log = []
    target = env.process(_target(env, log))

    def interrupter():
        yield env.timeout(1.0)
        target.interrupt("too late")

    env.process(interrupter())
    env.run()
    assert log == [("completed",)]
    assert target.value == "done"
    assert env.now == 1.0
    assert _drained(env)


def test_interrupt_scheduled_before_completion_but_delivered_after():
    # Interrupter fires first at t=1 and *schedules* the interrupt, but the
    # target's own timeout (older eid) resumes it to completion before the
    # interrupt entry is delivered — the delivery must then be dropped.
    env = Environment()
    log = []

    def interrupter(target_box):
        yield env.timeout(1.0)
        target_box[0].interrupt("racing")

    box = []
    env.process(interrupter(box))
    box.append(env.process(_target(env, log)))
    env.run()
    assert log == [("completed",)]
    assert box[0].value == "done"
    assert _drained(env)


def test_interrupt_before_completion_still_delivers():
    # Control: with the target parked past the interrupt time, the
    # interrupt must still go through.
    env = Environment()
    log = []

    def slow_target():
        try:
            yield env.timeout(5.0)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
            return "interrupted"
        return "done"

    target = env.process(slow_target())

    def interrupter():
        yield env.timeout(1.0)
        target.interrupt("now")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", "now")]
    assert target.value == "interrupted"
    assert _drained(env)


def test_double_interrupt_after_completion_leaks_nothing():
    env = Environment()
    log = []
    target = env.process(_target(env, log))

    def interrupter():
        yield env.timeout(1.0)
        target.interrupt("first")
        target.interrupt("second")

    env.process(interrupter())
    env.run()
    assert target.value == "done"
    assert _drained(env)
