"""Tests for local_DB persistence, data-usage accounting, and the
developing-region preset (§8)."""

import json

import pytest

from repro.core import BlockStatus, BlockType, CSawClient, CSawConfig, LocalDatabase
from repro.workloads.scenarios import pakistan_case_study


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSnapshotRestore:
    def make_db(self, clock):
        db = LocalDatabase(asn=17557, ttl=1000.0, clock=clock)
        db.record_measurement(
            "http://blocked.example/", BlockStatus.BLOCKED,
            [BlockType.BLOCK_PAGE, BlockType.DNS_SERVFAIL],
        )
        db.record_measurement("http://fine.example/", BlockStatus.NOT_BLOCKED, [])
        db.mark_posted(["http://blocked.example/"])
        return db

    def test_roundtrip_preserves_everything(self):
        clock = FakeClock()
        original = self.make_db(clock)
        snapshot = original.snapshot()
        restored = LocalDatabase(clock=clock)
        assert restored.restore(snapshot) == 2
        assert restored.asn == 17557
        assert restored.ttl == 1000.0
        status, record = restored.lookup("http://blocked.example/deep")
        assert status is BlockStatus.BLOCKED
        assert record.stages == [BlockType.BLOCK_PAGE, BlockType.DNS_SERVFAIL]
        assert record.global_posted
        assert restored.lookup("http://fine.example/x")[0] is BlockStatus.NOT_BLOCKED

    def test_snapshot_is_json_serializable(self):
        clock = FakeClock()
        snapshot = self.make_db(clock).snapshot()
        parsed = json.loads(json.dumps(snapshot))
        restored = LocalDatabase(clock=clock)
        assert restored.restore(parsed) == 2

    def test_stale_records_expire_after_restore(self):
        clock = FakeClock()
        snapshot = self.make_db(clock).snapshot()
        clock.now = 5000.0  # the client was offline past the TTL
        restored = LocalDatabase(clock=clock)
        restored.restore(snapshot)
        assert restored.lookup("http://blocked.example/")[0] is (
            BlockStatus.NOT_MEASURED
        )

    def test_restore_replaces_existing_state(self):
        clock = FakeClock()
        db = LocalDatabase(clock=clock)
        db.record_measurement("http://old.example/", BlockStatus.NOT_BLOCKED, [])
        db.restore(self.make_db(clock).snapshot())
        assert db.lookup("http://old.example/")[0] is BlockStatus.NOT_MEASURED


class TestDataUsage:
    @pytest.fixture()
    def scenario(self):
        return pakistan_case_study(seed=2468, with_proxy_fleet=False)

    def run(self, scenario, client, url, times=1):
        def proc():
            for _ in range(times):
                response = yield from client.request(url)
                yield response.measurement_process

        scenario.world.run_process(proc())

    def test_redundant_bytes_counted_on_unblocked_discovery(self, scenario):
        client = CSawClient(
            scenario.world, "du-1", [scenario.isp_a],
            transports=scenario.make_transports("du-1", include=["tor"]),
        )
        self.run(scenario, client, scenario.urls["small-unblocked"])
        stats = client.stats()
        # The Tor duplicate fetched the whole page for nothing.
        assert stats["redundant_data_bytes"] >= 95_000
        assert stats["data_used_bytes"] >= 2 * 95_000

    def test_steady_state_has_no_redundant_bytes(self, scenario):
        client = CSawClient(
            scenario.world, "du-2", [scenario.isp_a],
            transports=scenario.make_transports("du-2", include=["tor"]),
        )
        self.run(scenario, client, scenario.urls["small-unblocked"])
        after_discovery = client.measurement.redundant_bytes
        self.run(scenario, client, scenario.urls["small-unblocked"], times=5)
        # Selective redundancy: known-unblocked URLs go direct only.
        assert client.measurement.redundant_bytes == after_discovery

    def test_bytes_attributed_per_path(self, scenario):
        client = CSawClient(
            scenario.world, "du-3", [scenario.isp_a],
            transports=scenario.make_transports("du-3"),
        )
        self.run(scenario, client, scenario.urls["youtube"], times=3)
        by_path = client.measurement.bytes_by_path
        assert by_path.get("https", 0) >= 2 * 360_000  # the local fix
        assert by_path.get("direct", 0) > 0

    def test_developing_region_preset_reduces_duplicate_traffic(self, scenario):
        default_client = CSawClient(
            scenario.world, "du-4", [scenario.isp_a],
            transports=scenario.make_transports("du-4", include=["tor"]),
            config=CSawConfig(),
        )
        frugal_client = CSawClient(
            scenario.world, "du-5", [scenario.isp_a],
            transports=scenario.make_transports("du-5", include=["tor"]),
            config=CSawConfig.developing_region(),
        )
        for client in (default_client, frugal_client):
            # Fresh URLs each time: discovery traffic dominates.
            for index in range(6):
                url = f"http://{'www.smallnews.example.com'}/sec{index}"
                scenario.world.web.add_page(url, size_bytes=60_000)
                self.run(scenario, client, url)
        assert (
            frugal_client.measurement.redundant_bytes
            < default_client.measurement.redundant_bytes
        )

    def test_developing_region_overrides(self):
        config = CSawConfig.developing_region(probe_probability=0.5)
        assert config.probe_probability == 0.5
        assert config.redundant_delay == 2.0
