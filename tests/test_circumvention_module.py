"""Tests for adaptive circumvention selection (§4.3.2)."""

import pytest

from repro.core.circumvention import CircumventionModule, fix_defeats
from repro.core.config import CSawConfig
from repro.core.records import BlockType
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=55, with_proxy_fleet=False)


def make_module(scenario, include=None, config=None, name="cm"):
    transports = scenario.make_transports(name, include=include)
    return CircumventionModule(
        scenario.world, transports, config=config, rng_stream=f"cm/{name}"
    )


class TestFixDefeats:
    def test_public_dns_only_dns(self):
        assert fix_defeats("public-dns", [BlockType.DNS_SERVFAIL])
        assert not fix_defeats("public-dns", [BlockType.DNS_SERVFAIL, BlockType.HTTP_TIMEOUT])
        assert not fix_defeats("public-dns", [])

    def test_https_only_http(self):
        assert fix_defeats("https", [BlockType.BLOCK_PAGE])
        assert fix_defeats("https", [BlockType.HTTP_RST])
        assert not fix_defeats("https", [BlockType.SNI_TIMEOUT])

    def test_ip_hostname_dns_and_http(self):
        assert fix_defeats(
            "ip-as-hostname", [BlockType.DNS_REDIRECT, BlockType.HTTP_TIMEOUT]
        )
        assert not fix_defeats("ip-as-hostname", [BlockType.IP_TIMEOUT])

    def test_fronting_defeats_everything(self):
        assert fix_defeats(
            "domain-fronting",
            [BlockType.DNS_TIMEOUT, BlockType.IP_TIMEOUT, BlockType.SNI_RST],
        )

    def test_unknown_fix_never_defeats(self):
        assert not fix_defeats("bogus", [BlockType.BLOCK_PAGE])


class TestSelection:
    def test_local_fix_preferred_over_relays(self, scenario):
        module = make_module(scenario, name="s1")
        choice = module.choose(scenario.urls["youtube"], [BlockType.BLOCK_PAGE])
        assert choice.name == "https"  # cheapest fix covering http blocking

    def test_relay_when_no_fix_covers(self, scenario):
        module = make_module(
            scenario, include=["https", "tor", "lantern"], name="s2"
        )
        choice = module.choose(
            scenario.urls["youtube"], [BlockType.IP_TIMEOUT]
        )
        assert choice.name in ("tor", "lantern")

    def test_moving_average_picks_faster_relay(self, scenario):
        module = make_module(scenario, include=["tor", "lantern"], name="s3")
        url = scenario.urls["youtube"]
        for _ in range(5):
            module.record_plt("tor", url, 12.0)
            module.record_plt("lantern", url, 4.0)
        assert module.relay_for(url).name == "lantern"
        for _ in range(20):
            module.record_plt("tor", url, 1.0)
        assert module.relay_for(url).name == "tor"

    def test_every_nth_access_explores(self, scenario):
        config = CSawConfig(explore_every_n=5)
        module = make_module(
            scenario, include=["tor", "lantern"], config=config, name="s4"
        )
        url = scenario.urls["youtube"]
        for _ in range(10):
            module.record_plt("lantern", url, 2.0)
            module.record_plt("tor", url, 20.0)
        picks = [
            module.choose(url, [BlockType.IP_TIMEOUT]).name for _ in range(50)
        ]
        # Exploitation picks lantern; every 5th pick may go anywhere.
        assert picks.count("lantern") >= 35
        assert "tor" in picks  # exploration happened at least once

    def test_anonymity_preference_restricts_to_anonymous(self, scenario):
        config = CSawConfig(prefer_anonymity=True)
        module = make_module(scenario, config=config, name="s5")
        choice = module.choose(scenario.urls["youtube"], [BlockType.BLOCK_PAGE])
        assert choice.provides_anonymity  # tor, never the https fix

    def test_failed_fix_blacklisted_per_url(self, scenario):
        module = make_module(scenario, name="s6")
        url = scenario.urls["youtube"]
        stages = [BlockType.DNS_REDIRECT, BlockType.HTTP_TIMEOUT]
        first = module.local_fix_for(url, stages)
        assert first.name == "ip-as-hostname"
        module.mark_fix_failed(url, "ip-as-hostname")
        second = module.local_fix_for(url, stages)
        assert second.name == "domain-fronting"
        # Other URLs are unaffected.
        assert module.local_fix_for(scenario.urls["porn"], stages).name == "ip-as-hostname"

    def test_unavailable_fix_skipped(self, scenario):
        module = make_module(scenario, name="s7")
        # small-unblocked does not support fronting; an SNI-blocked URL
        # there has no viable local fix.
        choice = module.local_fix_for(
            scenario.urls["small-unblocked"], [BlockType.SNI_TIMEOUT]
        )
        assert choice is None

    def test_duplicate_transport_rejected(self, scenario):
        module = make_module(scenario, include=["tor"], name="s8")
        with pytest.raises(ValueError):
            module.register(scenario.tor_transport("s8b"))

    def test_estimate_uses_priors_for_unseen(self, scenario):
        module = make_module(scenario, include=["tor", "lantern"], name="s9")
        assert module.estimate_plt("tor", "http://x.example/") == pytest.approx(5.0)
        assert module.estimate_plt("lantern", "http://x.example/") == pytest.approx(3.0)
