"""The session layer's trace bus: every served response carries a full,
monotonically timestamped stage trace; hooks (subscribe/cancel/deadline)
work; the per-stage PLT breakdown aggregates upward."""

import pytest

from repro.core import (
    BlockStatus,
    CSawClient,
    SessionTrace,
)
from repro.core.trace import (
    STAGE_LOCAL_DNS,
    STAGE_SESSION,
    transport_stage,
)
from repro.workloads.scenarios import pakistan_case_study


def make_client(scenario, isp, name, config=None):
    return CSawClient(
        scenario.world,
        name,
        [isp],
        transports=scenario.make_transports(name),
        config=config,
    )


def request(scenario, client, url):
    def proc():
        response = yield from client.request(url)
        yield response.measurement_process
        return response

    return scenario.world.run_process(proc())


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=83, with_proxy_fleet=False)


def assert_well_formed(trace, url):
    assert trace is not None
    assert len(trace) > 0
    assert trace.url == url
    stamps = [event.t for event in trace]
    assert stamps == sorted(stamps)
    # The session envelope opens the trace and a serve event exists.
    first = next(iter(trace))
    assert first.stage == STAGE_SESSION and first.kind == "begin"
    assert any(e.kind == "serve" for e in trace)
    assert trace.stage_durations()


class TestServedResponseTraces:
    def test_unknown_flow_unblocked(self, scenario):
        client = make_client(scenario, scenario.isp_a, "tr1")
        url = scenario.urls["small-unblocked"]
        response = request(scenario, client, url)
        assert response.ok
        assert_well_formed(response.trace, url)
        sequence = response.trace.stage_sequence()
        assert sequence[0] == STAGE_SESSION
        assert STAGE_LOCAL_DNS in sequence

    def test_unknown_flow_circumvented_has_transport_events(self, scenario):
        client = make_client(scenario, scenario.isp_a, "tr2")
        url = scenario.urls["youtube"]
        response = request(scenario, client, url)
        assert response.status is BlockStatus.BLOCKED
        assert response.path != "direct"
        assert_well_formed(response.trace, url)
        kinds = {
            (e.stage, e.kind)
            for e in response.trace
            if e.stage.startswith("transport:")
        }
        winner = transport_stage(response.path)
        assert (winner, "attempt") in kinds
        assert (winner, "result") in kinds

    def test_blocked_flow_trace_is_fresh_per_request(self, scenario):
        client = make_client(scenario, scenario.isp_a, "tr3")
        url = scenario.urls["youtube"]
        first = request(scenario, client, url)
        second = request(scenario, client, url)  # now known-blocked
        assert second.status is BlockStatus.BLOCKED
        assert_well_formed(second.trace, url)
        assert second.trace is not first.trace
        assert any(
            e.stage.startswith("transport:") and e.kind == "result"
            for e in second.trace
        )

    def test_unblocked_flow_measures_direct(self, scenario):
        client = make_client(scenario, scenario.isp_a, "tr4")
        url = scenario.urls["small-unblocked"]
        request(scenario, client, url)
        second = request(scenario, client, url)  # now known-unblocked
        assert second.status is BlockStatus.NOT_BLOCKED
        assert_well_formed(second.trace, url)
        assert STAGE_LOCAL_DNS in second.trace.stage_sequence()

    def test_breakdown_aggregates_to_client_stats(self, scenario):
        client = make_client(scenario, scenario.isp_a, "tr5")
        request(scenario, client, scenario.urls["small-unblocked"])
        request(scenario, client, scenario.urls["youtube"])
        stats = client.stats()
        assert stats["sessions_completed"] == 2
        breakdown = stats["plt_breakdown"]
        assert STAGE_SESSION in breakdown
        assert STAGE_LOCAL_DNS in breakdown
        assert all(seconds >= 0.0 for seconds in breakdown.values())


class TestSessionHooks:
    def _session(self, scenario, name, url):
        client = make_client(scenario, scenario.isp_a, name)
        return client, client.measurement.new_session(url)

    def test_subscribe_sees_every_event(self, scenario):
        url = scenario.urls["small-unblocked"]
        client, session = self._session(scenario, "hk1", url)
        seen = []
        session.subscribe(seen.append)
        scenario.world.run_process(session.run())
        assert seen == list(session.trace)
        assert seen[0].stage == STAGE_SESSION and seen[0].kind == "begin"

    def test_cancel_stops_the_redundancy_wait(self, scenario):
        url = scenario.urls["table5/tcp-ip"]  # direct path hangs
        client, session = self._session(scenario, "hk2", url)
        session.cancel()
        world = scenario.world
        t0 = world.env.now
        response = world.run_process(session.run())
        assert any(
            e.kind == "mark" and e.detail == "cancelled" for e in session.trace
        )
        # Cancelled before any fetch resolved: nothing was measured.
        assert response.status is BlockStatus.NOT_MEASURED
        assert world.env.now == pytest.approx(t0)

    def test_deadline_bounds_the_redundancy_wait(self, scenario):
        url = scenario.urls["table5/tcp-ip"]  # direct path hangs
        client, session = self._session(scenario, "hk3", url)
        session.set_deadline(0.5)
        world = scenario.world
        t0 = world.env.now
        response = world.run_process(session.run())
        assert any(
            e.kind == "mark" and e.detail == "deadline expired"
            for e in session.trace
        )
        assert world.env.now <= t0 + 0.5 + 1e-9
        assert response is session.response


class TestTraceInvariants:
    def test_emit_rejects_backwards_timestamps(self):
        clock = [5.0]
        trace = SessionTrace(lambda: clock[0], url="http://x.example/")
        trace.begin(STAGE_SESSION)
        clock[0] = 3.0
        with pytest.raises(ValueError):
            trace.mark(STAGE_SESSION, "time ran backwards")

    def test_stage_durations_sum_span_ends(self):
        clock = [0.0]
        trace = SessionTrace(lambda: clock[0])
        started = trace.begin(STAGE_LOCAL_DNS)
        clock[0] = 2.5
        trace.end(STAGE_LOCAL_DNS, started)
        assert trace.stage_durations() == {STAGE_LOCAL_DNS: 2.5}
