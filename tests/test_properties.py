"""Property-based tests (hypothesis) on kernel and core invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import UrlPrefixIndex
from repro.core.globaldb import ReportItem, ServerDB
from repro.core.localdb import LocalDatabase
from repro.core.records import BlockStatus, BlockType
from repro.core.voting import VotingLedger
from repro.simnet.engine import Environment
from repro.simnet.latency import LatencyModel


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1,
                    max_size=30))
    def test_clock_reaches_latest_timer(self, delays):
        env = Environment()
        done = []

        def sleeper(delay):
            yield env.timeout(delay)
            done.append(delay)

        for delay in delays:
            env.process(sleeper(delay))
        env.run()
        assert sorted(done) == sorted(delays)
        assert env.now == pytest.approx(max(delays))

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=20))
    def test_event_order_is_time_order(self, delays):
        env = Environment()
        order = []

        def sleeper(delay):
            yield env.timeout(delay)
            order.append(env.now)

        for delay in delays:
            env.process(sleeper(delay))
        env.run()
        assert order == sorted(order)

    @given(
        st.recursive(
            st.floats(min_value=0.01, max_value=5.0),
            lambda children: st.lists(children, min_size=1, max_size=3),
            max_leaves=12,
        )
    )
    @settings(max_examples=40)
    def test_random_process_trees_complete(self, tree):
        """Arbitrary trees of spawn-and-join processes all terminate and
        the root's duration equals the tree's critical path."""
        env = Environment()

        def critical_path(node):
            if isinstance(node, float):
                return node
            return max(critical_path(child) for child in node)

        def run_node(node):
            if isinstance(node, float):
                yield env.timeout(node)
                return node
            children = [env.process(run_node(child)) for child in node]
            yield env.all_of(children)
            return None

        root = env.process(run_node(tree))
        env.run(until=root)
        assert env.now == pytest.approx(critical_path(tree))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20)
    def test_same_program_same_trace(self, seed):
        """Determinism: identical programs produce identical event traces."""
        import random

        def run_program():
            env = Environment()
            rng = random.Random(seed)
            trace = []

            def worker(name):
                for _ in range(3):
                    yield env.timeout(rng.uniform(0.1, 2.0))
                    trace.append((name, round(env.now, 9)))

            for name in range(4):
                env.process(worker(name))
            env.run()
            return trace

        assert run_program() == run_program()


class TestLatencyProperties:
    @given(
        st.floats(min_value=0.001, max_value=2.0),
        st.floats(min_value=0.001, max_value=2.0),
    )
    def test_combine_adds_rtts_commutatively(self, a, b):
        m1 = LatencyModel(base_rtt=a)
        m2 = LatencyModel(base_rtt=b)
        assert m1.combine(m2).base_rtt == pytest.approx(m2.combine(m1).base_rtt)
        assert m1.combine(m2).base_rtt == pytest.approx(a + b)

    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_combined_loss_in_unit_interval(self, la, lb):
        combined = LatencyModel(0.1, loss=la).combine(LatencyModel(0.1, loss=lb))
        assert 0.0 <= combined.loss < 1.0
        assert combined.loss >= max(la, lb) - 1e-12


_paths = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=0, max_size=4
).map(lambda segs: "/" + "/".join(segs) if segs else "/")


class TestPrefixIndexProperties:
    @given(st.sets(_paths, min_size=1, max_size=10), _paths)
    def test_longest_prefix_is_longest_matching_stored_path(self, stored, query):
        index = UrlPrefixIndex()
        for path in stored:
            index.add(f"http://x.example{path}")
        result = index.longest_prefix(f"http://x.example{query}")

        def is_prefix(prefix, path):
            if prefix == "/":
                return True
            return path == prefix or path.startswith(prefix + "/")

        matching = [p for p in stored if is_prefix(p, query)]
        if not matching:
            assert result is None
        else:
            expected = max(matching, key=len)
            assert result == f"http://x.example{expected}"

    @given(st.lists(_paths, min_size=1, max_size=15))
    def test_add_remove_roundtrip_empties_index(self, paths):
        index = UrlPrefixIndex()
        for path in paths:
            index.add(f"http://x.example{path}")
        for path in paths:
            index.remove(f"http://x.example{path}")
        assert len(index) == 0
        assert index.longest_prefix("http://x.example/a") is None


class TestVotingProperties:
    clients = st.sampled_from([f"c{i}" for i in range(5)])
    keys = st.sampled_from([(f"http://u{i}.example/", 1) for i in range(6)])

    @given(
        st.lists(
            st.tuples(clients, st.lists(keys, max_size=6, unique=True)),
            max_size=20,
        )
    )
    def test_vote_mass_equals_active_clients(self, operations):
        ledger = VotingLedger()
        for client, keys in operations:
            ledger.set_client_reports(client, keys)
        total = sum(
            ledger.stats(f"http://u{i}.example/", 1).votes for i in range(6)
        )
        assert total == pytest.approx(ledger.client_count())

    @given(
        st.lists(
            st.tuples(clients, st.lists(keys, max_size=6, unique=True)),
            max_size=20,
        )
    )
    def test_reporter_counts_consistent(self, operations):
        ledger = VotingLedger()
        for client, keys in operations:
            ledger.set_client_reports(client, keys)
        for i in range(6):
            url = f"http://u{i}.example/"
            stats = ledger.stats(url, 1)
            assert stats.reporters == len(ledger.reporters_for(url, 1))
            assert stats.votes <= stats.reporters + 1e-9


class TestServerDbProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # client index
                st.integers(min_value=0, max_value=9),  # url index
                st.integers(min_value=1, max_value=2),  # asn
            ),
            max_size=30,
        )
    )
    def test_download_is_union_of_posts_per_as(self, posts):
        server = ServerDB(entry_ttl=None)
        uuids = [server.register(now=float(i)) for i in range(4)]
        expected = {1: set(), 2: set()}
        for client_index, url_index, asn in posts:
            url = f"http://u{url_index}.example/"
            server.post_update(
                uuids[client_index],
                [ReportItem(url=url, asn=asn,
                            stages=(BlockType.BLOCK_PAGE,), measured_at=0.0)],
                now=1.0,
            )
            expected[asn].add(url)
        for asn in (1, 2):
            got = {e.url for e in server.blocked_for_as(asn, now=2.0)}
            assert got == expected[asn]


class TestLocalDbProperties:
    ops = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # site
            _paths,
            st.sampled_from(
                [None, BlockType.BLOCK_PAGE, BlockType.DNS_SERVFAIL]
            ),
        ),
        max_size=25,
    )

    @given(ops)
    def test_record_count_matches_index(self, operations):
        db = LocalDatabase(ttl=1e9)
        for site, path, block in operations:
            url = f"http://s{site}.example{path}"
            if block is None:
                db.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            else:
                db.record_measurement(url, BlockStatus.BLOCKED, [block])
        assert db.record_count == len(db._index)

    @given(ops)
    def test_hostname_scoped_blocking_collapses_origin(self, operations):
        db = LocalDatabase(ttl=1e9)
        for site, path, block in operations:
            url = f"http://s{site}.example{path}"
            if block is None:
                db.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            else:
                db.record_measurement(url, BlockStatus.BLOCKED, [block])
        # Any origin whose latest blocked evidence is hostname-scoped must
        # have at most one record (at the base URL).
        for site in range(3):
            records = [
                r for r in db.records()
                if r.url.startswith(f"http://s{site}.example")
            ]
            scoped = [r for r in records if r.hostname_scoped]
            for record in scoped:
                assert record.url == f"http://s{site}.example/"


class TestSyncWireFormatProperties:
    """The columnar batch path is an optimization of the row path —
    hypothesis drives both through the same random post/dissent/pull
    interleavings and demands bit-identical client state after every
    pull (acceptance for the delta-sync wire format)."""

    # (op, client index, url index, asn offset): op 0-2 posts, 3 dissents,
    # 4 pulls on both views.
    ops = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=1),
        ),
        max_size=40,
    )

    @staticmethod
    def _state(view):
        return (
            view.version,
            view.synced_asn,
            [
                (e.url, e.asn, tuple(e.stages), e.measured_at,
                 e.posted_at, e.first_measured_at, e.last_uuid)
                for e in view._entries.values()
            ],
        )

    @given(ops)
    @settings(max_examples=60)
    def test_batch_and_row_merges_identical(self, operations):
        from repro.core.reporting import GlobalView

        server = ServerDB(entry_ttl=None)
        uuids = [server.register(now=float(i)) for i in range(4)]
        row_views = {1: GlobalView(), 2: GlobalView()}
        batch_views = {1: GlobalView(), 2: GlobalView()}
        now = 10.0
        for op, client_index, url_index, asn_offset in operations:
            now += 1.0
            asn, url = 1 + asn_offset, f"http://u{url_index}.example/"
            if op <= 2:
                stages = (
                    (BlockType.BLOCK_PAGE,)
                    if op == 0
                    else (BlockType.DNS_TIMEOUT, BlockType.BLOCK_PAGE)
                )
                server.post_update(
                    uuids[client_index],
                    [ReportItem(url=url, asn=asn, stages=stages,
                                measured_at=now - 0.5)],
                    now=now,
                )
            elif op == 3:
                server.post_dissent(uuids[client_index], url, asn, now=now)
            else:
                rows, batches = row_views[asn], batch_views[asn]
                result = server.sync_for_as(
                    asn, now, since_version=rows.since_version(asn)
                )
                rows.apply_sync(result, now)
                batch = server.sync_batch_for_as(
                    asn, now, since_version=batches.since_version(asn)
                )
                batch_views[asn].apply_batch(batch, now)
                assert batch.transferred == result.transferred
        now += 1.0
        for asn in (1, 2):
            # One final pull so both views see the terminal server state.
            rows, batches = row_views[asn], batch_views[asn]
            rows.apply_sync(
                server.sync_for_as(
                    asn, now, since_version=rows.since_version(asn)
                ),
                now,
            )
            batches.apply_batch(
                server.sync_batch_for_as(
                    asn, now, since_version=batches.since_version(asn)
                ),
                now,
            )
            assert self._state(batches) == self._state(rows)


class TestGroupedSweepProperties:
    """The group-applied fleet pull sweep is an optimization of the
    retained per-client spec loop — hypothesis drives both through
    random cohort shapes and wave/pull schedules and demands the same
    :class:`FleetMetrics`, the same per-client record arrays, and the
    same server-side serve counters (acceptance for hot-path round 4).
    """

    @staticmethod
    def _storm(sweep_mode, seed, n_ases, clients, urls, frac, interval,
               tick_div, wave_at, horizon_intervals):
        from repro.core.fleet import ClientCohort

        server = ServerDB(entry_ttl=None)
        env = Environment()
        cohort = ClientCohort(
            server,
            asns=[41000 + i for i in range(n_ases)],
            clients_per_as=clients,
            seed=seed,
            reporter_fraction=frac,
            pull_interval=interval,
            tick=interval / tick_div,
            sweep_mode=sweep_mode,
        )

        def driver():
            yield env.timeout(wave_at)
            cohort.start_wave(env.now, urls_per_as=urls)

        env.process(driver())
        stop_at = wave_at + horizon_intervals * interval + cohort.tick
        env.process(cohort.run(env, stop_at))
        env.run()
        cohort.finalize()
        return cohort

    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n_ases=st.integers(min_value=1, max_value=3),
        clients=st.integers(min_value=1, max_value=25),
        urls=st.integers(min_value=1, max_value=6),
        frac=st.floats(min_value=0.05, max_value=1.0),
        interval=st.floats(min_value=60.0, max_value=900.0),
        tick_div=st.integers(min_value=3, max_value=40),
        wave_frac=st.floats(min_value=0.0, max_value=2.0),
        horizon_intervals=st.floats(min_value=0.25, max_value=2.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_grouped_sweep_bit_identical_to_spec(
        self, seed, n_ases, clients, urls, frac, interval, tick_div,
        wave_frac, horizon_intervals,
    ):
        args = (seed, n_ases, clients, urls, frac, interval, tick_div,
                wave_frac * interval, horizon_intervals)
        spec = self._storm("spec", *args)
        grouped = self._storm("grouped", *args)
        g_summary, s_summary = grouped.metrics.summary(), spec.metrics.summary()
        assert g_summary.keys() == s_summary.keys()
        for name in s_summary:
            g_val, s_val = g_summary[name], s_summary[name]
            if isinstance(s_val, float) and math.isnan(s_val):
                # Unconverged cohorts report NaN aggregates on both sides.
                assert math.isnan(g_val), name
            else:
                assert g_val == s_val, name
        assert grouped.metrics.convergence_by_as == \
            spec.metrics.convergence_by_as
        assert grouped.metrics.pending_by_as == spec.metrics.pending_by_as
        # Server-side serve/build accounting must agree too.
        assert grouped.server.full_syncs_served == spec.server.full_syncs_served
        assert grouped.server.delta_syncs_served == \
            spec.server.delta_syncs_served
        # Per-client record arrays: same layout, same values, bit for bit
        # (the float pull schedule advances by the identical additions).
        for ga, sa in zip(grouped.shards, spec.shards):
            assert ga.versions == sa.versions
            assert ga.next_pull_at == sa.next_pull_at
            assert ga.bytes_received == sa.bytes_received
            assert ga.rows_received == sa.rows_received
            assert ga.pending == sa.pending
            assert (ga.pulls, ga.pull_ptr) == (sa.pulls, sa.pull_ptr)
            assert ga.unconverged == sa.unconverged
            assert ga.converged_at == sa.converged_at
