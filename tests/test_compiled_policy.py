"""CompiledPolicy must be observationally identical to the linear rule scan.

The compiled index is a pure performance layer: for every wire observation
it must return the *same verdict object* (``is``-identical, since verdicts
are shared singletons or per-rule instances) that the original first-match
linear scan returns.  These tests drive both paths with a seeded battery of
inputs derived from the Pakistan case-study policies plus adversarial
constructions (mixed case, scheme-prefix pathologies, rule-order ties).
"""

from __future__ import annotations

import random

import pytest

from repro.censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.workloads.scenarios import pakistan_case_study


def _policy_vocab(policy):
    """Harvest every identifier the policy's matchers mention."""
    domains, keywords, prefixes, ips = set(), set(), set(), set()
    for rule in policy.rules:
        domains |= rule.matcher.domains
        keywords |= rule.matcher.keywords
        prefixes |= rule.matcher.url_prefixes
        ips |= rule.matcher.ips
    return domains, keywords, prefixes, ips


def _mixed_case(rng, text):
    return "".join(
        ch.upper() if rng.random() < 0.5 else ch.lower() for ch in text
    )


def _input_battery(policy, seed):
    """Positive, negative, and near-miss inputs for every stage."""
    rng = random.Random(seed)
    domains, keywords, prefixes, ips = _policy_vocab(policy)

    qnames = ["unrelated.example.net", "com", ""]
    hosts = ["innocuous.example.org"]
    paths = ["/", "/index.html", "/Watch?v=ABC"]
    snis = [None, "plain.example.org"]
    probe_ips = ["203.0.113.250"]

    for domain in sorted(domains):
        qnames += [
            domain,
            f"www.{domain}",
            _mixed_case(rng, f"CDN.{domain}."),
            f"not{domain}",  # suffix of the string but not label-aligned
            domain.split(".", 1)[-1],  # parent domain: must NOT match
        ]
        hosts += [domain, _mixed_case(rng, f"m.{domain}")]
        snis += [domain, _mixed_case(rng, f"www.{domain}")]
    for keyword in sorted(keywords):
        paths += [
            f"/{keyword}/video",
            f"/{_mixed_case(rng, keyword)}.html",  # MiXeD case must match
            f"/{keyword[:-1]}x" if len(keyword) > 1 else f"/{keyword}z",
        ]
        snis += [f"{keyword}.example.com", _mixed_case(rng, f"x{keyword}y.net")]
    for prefix in sorted(prefixes):
        bare = prefix[7:] if prefix.startswith("http://") else prefix
        if bare:
            if "/" in bare:
                h, _, p = bare.partition("/")
                hosts.append(h)
                paths += ["/" + p, "/" + p + "extra", "/" + p[:-1]]
            else:
                hosts += [bare, bare + ".evil.com"]
    for ip in sorted(ips):
        probe_ips.append(ip)
        probe_ips.append(ip + "9")

    cases = {"dns": [], "ip": [], "http": [], "tls": []}
    for qname in qnames:
        cases["dns"].append((qname,))
    for ip in probe_ips:
        cases["ip"].append((ip,))
    for _ in range(300):
        cases["http"].append((rng.choice(hosts), rng.choice(paths)))
        cases["tls"].append((rng.choice(snis), rng.choice(probe_ips)))
    return cases


def _assert_equivalent(policy, seed=0):
    cases = _input_battery(policy, seed)
    for (qname,) in cases["dns"]:
        assert policy.on_dns_query(qname) is policy.linear_on_dns_query(qname), qname
    for (ip,) in cases["ip"]:
        assert policy.on_packet(ip) is policy.linear_on_packet(ip), ip
    for host, path in cases["http"]:
        assert policy.on_http_request(host, path) is \
            policy.linear_on_http_request(host, path), (host, path)
    for sni, ip in cases["tls"]:
        assert policy.on_tls_client_hello(sni, ip) is \
            policy.linear_on_tls_client_hello(sni, ip), (sni, ip)


@pytest.mark.parametrize("isp", ["isp_a", "isp_b"])
def test_pakistan_policies_compiled_matches_linear(isp):
    scenario = pakistan_case_study(seed=7)
    policy = getattr(scenario, isp).censor.policy
    for seed in range(3):
        _assert_equivalent(policy, seed)


def test_first_match_wins_across_criteria():
    # Rule 0 matches by keyword, rule 1 by (more specific) domain; the
    # linear scan returns rule 0, and so must the index.
    policy = CensorPolicy(
        rules=[
            Rule(
                matcher=Matcher(keywords={"tube"}),
                http=HttpVerdict(HttpAction.DROP),
            ),
            Rule(
                matcher=Matcher(domains={"youtube.com"}),
                http=HttpVerdict(HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip="10.0.0.1"),
            ),
        ]
    )
    assert policy.on_http_request("www.youtube.com", "/") is policy.rules[0].http
    _assert_equivalent(policy)


def test_scheme_prefix_pathologies():
    # The linear scan retries with "http://" + url, so a prefix that is
    # itself a prefix of "http://" matches *every* URL, and a full
    # "http://host/path" prefix matches scheme-lessly.
    policy = CensorPolicy(
        rules=[
            Rule(
                matcher=Matcher(url_prefixes={"http://evil.com/bad"}),
                http=HttpVerdict(HttpAction.DROP),
            ),
            Rule(
                matcher=Matcher(url_prefixes={"htt"}),
                http=HttpVerdict(HttpAction.RST),
            ),
            Rule(
                matcher=Matcher(url_prefixes={"nohost"}),
                http=HttpVerdict(HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip="10.0.0.1"),
            ),
        ]
    )
    assert policy.on_http_request("evil.com", "/bad/page") is policy.rules[0].http
    assert policy.on_http_request("anything.net", "/x") is policy.rules[1].http
    _assert_equivalent(policy)


def test_mixed_case_path_hits_keyword_rule():
    # Satellite fix: a MiXeD-case path must not dodge keyword matching.
    policy = CensorPolicy(
        rules=[
            Rule(
                matcher=Matcher(keywords={"porn"}),
                http=HttpVerdict(HttpAction.DROP),
            )
        ]
    )
    verdict = policy.on_http_request("cdn.example.com", "/PoRn/clip.mp4")
    assert verdict.action is HttpAction.DROP
    assert policy.linear_on_http_request("cdn.example.com", "/PoRn/clip.mp4") \
        is verdict


def test_add_and_remove_rules_invalidate_compiled_index():
    policy = CensorPolicy(name="mutating")
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"a.com"}),
            dns=DnsVerdict(DnsAction.NXDOMAIN),
            label="first",
        )
    )
    first = policy.compiled()
    assert policy.on_dns_query("www.a.com").action is DnsAction.NXDOMAIN
    assert policy.on_dns_query("www.b.com").action is DnsAction.PASS

    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"b.com"}, ips={"1.2.3.4"}),
            dns=DnsVerdict(DnsAction.SERVFAIL),
            ip=IpVerdict(IpAction.DROP),
            tls=TlsVerdict(TlsAction.DROP),
            label="second",
        )
    )
    assert policy.compiled() is not first  # rebuilt after add_rule
    assert policy.on_dns_query("www.b.com").action is DnsAction.SERVFAIL
    assert policy.on_packet("1.2.3.4").action is IpAction.DROP
    assert policy.on_tls_client_hello(None, "1.2.3.4").action is TlsAction.DROP
    _assert_equivalent(policy)

    policy.remove_rules("second")
    assert policy.on_dns_query("www.b.com").action is DnsAction.PASS
    assert policy.on_packet("1.2.3.4").action is IpAction.PASS
    assert policy.compiled() is policy.compiled()  # stable while unchanged


def test_empty_policy_passes_everything():
    policy = CensorPolicy(name="empty")
    assert policy.on_dns_query("x.com").action is DnsAction.PASS
    assert policy.on_packet("9.9.9.9").action is IpAction.PASS
    assert policy.on_http_request("x.com", "/").action is HttpAction.PASS
    assert policy.on_tls_client_hello("x.com", "9.9.9.9").action is TlsAction.PASS
