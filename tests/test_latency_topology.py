"""Tests for latency models, IP utilities, and topology wiring."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.ipaddr import IpAllocator, int_to_ip, ip_to_int, is_private
from repro.simnet.latency import (
    INIT_CWND_BYTES,
    LatencyModel,
    slow_start_rounds,
    transfer_time,
)
from repro.simnet.rng import RngRegistry
from repro.simnet.topology import AccessNetwork, Network


class TestLatencyModel:
    def test_zero_jitter_is_deterministic(self):
        model = LatencyModel(base_rtt=0.1, jitter_sigma=0.0)
        rng = random.Random(1)
        assert model.sample_rtt(rng) == 0.1

    def test_jitter_centers_on_base(self):
        model = LatencyModel(base_rtt=0.2, jitter_sigma=0.1)
        rng = random.Random(1)
        samples = [model.sample_rtt(rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 0.19 < mean < 0.21

    def test_high_jitter_has_heavier_tail(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        calm = LatencyModel(base_rtt=0.2, jitter_sigma=0.05)
        congested = LatencyModel(base_rtt=0.2, jitter_sigma=0.6)
        calm_samples = sorted(calm.sample_rtt(rng_a) for _ in range(2000))
        hot_samples = sorted(congested.sample_rtt(rng_b) for _ in range(2000))
        assert hot_samples[-20] > calm_samples[-20]

    def test_combine_adds_rtts_and_composes_loss(self):
        a = LatencyModel(base_rtt=0.1, loss=0.1)
        b = LatencyModel(base_rtt=0.2, loss=0.1)
        combined = a.combine(b)
        assert combined.base_rtt == pytest.approx(0.3)
        assert combined.loss == pytest.approx(1 - 0.9 * 0.9)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_rtt=-1)
        with pytest.raises(ValueError):
            LatencyModel(base_rtt=0.1, loss=1.0)
        with pytest.raises(ValueError):
            LatencyModel(base_rtt=0.1, jitter_sigma=-0.1)


class TestTransferTime:
    def test_small_object_fits_initial_window(self):
        assert slow_start_rounds(1000) == 0
        assert slow_start_rounds(INIT_CWND_BYTES) == 0

    def test_rounds_grow_logarithmically(self):
        assert slow_start_rounds(INIT_CWND_BYTES * 2) >= 1
        assert slow_start_rounds(INIT_CWND_BYTES * 100) <= 8

    def test_transfer_monotone_in_size(self):
        small = transfer_time(10_000, rtt=0.1, bandwidth_bps=10e6)
        large = transfer_time(1_000_000, rtt=0.1, bandwidth_bps=10e6)
        assert large > small

    def test_transfer_monotone_in_rtt(self):
        near = transfer_time(100_000, rtt=0.02, bandwidth_bps=10e6)
        far = transfer_time(100_000, rtt=0.4, bandwidth_bps=10e6)
        assert far > near

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(-1, 0.1, 1e6)
        with pytest.raises(ValueError):
            transfer_time(100, 0.1, 0)

    @given(st.integers(min_value=0, max_value=10_000_000))
    def test_rounds_never_negative(self, size):
        assert slow_start_rounds(size) >= 0


class TestIpUtils:
    def test_roundtrip(self):
        assert ip_to_int(int_to_ip(0x01020304)) == 0x01020304
        assert int_to_ip(ip_to_int("8.8.8.8")) == "8.8.8.8"

    @pytest.mark.parametrize("addr", ["10.0.0.5", "192.168.1.1", "127.0.0.1", "172.16.9.9"])
    def test_private_detection(self, addr):
        assert is_private(addr)

    @pytest.mark.parametrize("addr", ["8.8.8.8", "100.0.0.1", "172.32.0.1"])
    def test_public_detection(self, addr):
        assert not is_private(addr)

    def test_allocator_unique(self):
        alloc = IpAllocator()
        addresses = {alloc.allocate() for _ in range(1000)}
        assert len(addresses) == 1000

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.999")


class TestNetwork:
    def make_network(self):
        return Network(RngRegistry(7))

    def test_add_as_and_host(self):
        net = self.make_network()
        isp = net.add_as(17557, "PTCL", "pakistan")
        host = net.add_host("client-1", "pakistan", asn=17557)
        assert net.host_for_ip(host.ip) is host
        assert net.host_for_name("client-1") is host
        assert net.ases[17557] is isp

    def test_duplicate_rejected(self):
        net = self.make_network()
        net.add_as(1, "a", "x")
        with pytest.raises(ValueError):
            net.add_as(1, "b", "y")
        net.add_host("h", "pakistan")
        with pytest.raises(ValueError):
            net.add_host("h", "pakistan")

    def test_host_on_unknown_as_rejected(self):
        net = self.make_network()
        with pytest.raises(ValueError):
            net.add_host("h", "pakistan", asn=999)

    def test_dns_registration(self):
        net = self.make_network()
        host = net.add_host("www.youtube.com", "global-anycast", register_dns=True)
        assert net.authoritative_ips("www.youtube.com") == [host.ip]
        assert net.authoritative_ips("WWW.YOUTUBE.COM") == [host.ip]
        assert net.authoritative_ips("nonexistent.example") == []

    def test_geo_rtt_symmetric_lookup(self):
        net = self.make_network()
        assert net.geo_rtt("pakistan", "uk") == pytest.approx(0.228)
        assert net.geo_rtt("uk", "pakistan") == pytest.approx(0.228)

    def test_geo_rtt_same_location_default(self):
        net = self.make_network()
        assert net.geo_rtt("uk", "uk") == pytest.approx(0.012)

    def test_latency_between_includes_extra_rtt(self):
        net = self.make_network()
        a = net.add_host("a", "pakistan", extra_rtt=0.05)
        b = net.add_host("b", "uk", extra_rtt=0.02)
        model = net.latency_between(a, b)
        assert model.base_rtt == pytest.approx(0.228 + 0.05 + 0.02)

    def test_path_bandwidth_is_bottleneck(self):
        net = self.make_network()
        a = net.add_host("a", "pakistan", bandwidth_bps=5e6)
        b = net.add_host("b", "uk", bandwidth_bps=100e6)
        assert net.path_bandwidth(a, b) == 5e6


class TestAccessNetwork:
    def test_single_homed_always_same(self):
        net = Network(RngRegistry(1))
        isp = net.add_as(1, "only", "pakistan")
        access = AccessNetwork(isps=[isp])
        rng = random.Random(3)
        assert not access.multihomed
        assert all(access.pick_isp(rng) is isp for _ in range(10))

    def test_multihomed_uses_both(self):
        net = Network(RngRegistry(1))
        isp_a = net.add_as(1, "a", "pakistan")
        isp_b = net.add_as(2, "b", "pakistan")
        access = AccessNetwork(isps=[isp_a, isp_b])
        rng = random.Random(3)
        chosen = {access.pick_isp(rng).asn for _ in range(100)}
        assert access.multihomed
        assert chosen == {1, 2}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AccessNetwork(isps=[])


class TestRngRegistry:
    def test_streams_are_stable_and_distinct(self):
        rngs = RngRegistry(5)
        tor = rngs.stream("tor")
        assert rngs.stream("tor") is tor
        a = RngRegistry(5).stream("tor").random()
        b = RngRegistry(5).stream("tor").random()
        assert a == b
        c = RngRegistry(5).stream("lantern").random()
        assert a != c

    def test_fork_changes_streams(self):
        parent = RngRegistry(5)
        child = parent.fork("user-1")
        assert parent.stream("x").random() != child.stream("x").random()
