"""The failure taxonomy: single source of truth, exhaustive, and the
Figure-4 transition table — every (stage, failure) pair mapped to the
expected BlockType and stage sequence, checked against both the
DetectionOutcome (old golden semantics) and the new session trace."""

import pytest

from repro.core.detection import measure_direct_path
from repro.core.records import BlockStatus, BlockType
from repro.core.taxonomy import (
    BLOCK_TYPE_FAILURE_CLASS,
    FAILURE_BLOCK_TYPES,
    UnclassifiedFailureError,
    block_type_for,
    dns_block_type,
    failure_class,
    failure_class_for,
)
from repro.simnet.dns import DnsError, DnsTimeout, NxDomain, Refused, ServFail
from repro.simnet.http import HttpTimeout
from repro.simnet.tcp import ConnectionReset, ConnectTimeout
from repro.simnet.tls import TlsReset, TlsTimeout
from repro.workloads.scenarios import pakistan_case_study

# (constructor, expected BlockType, expected failure class)
_CASES = [
    (lambda: DnsTimeout("x.example"), BlockType.DNS_TIMEOUT, "dns"),
    (lambda: NxDomain("x.example"), BlockType.DNS_NXDOMAIN, "dns"),
    (lambda: ServFail("x.example"), BlockType.DNS_SERVFAIL, "dns"),
    (lambda: Refused("x.example"), BlockType.DNS_REFUSED, "dns"),
    (lambda: ConnectTimeout("1.2.3.4"), BlockType.IP_TIMEOUT, "tcp"),
    (lambda: ConnectionReset("1.2.3.4"), BlockType.IP_RST, "tcp"),
    (lambda: TlsTimeout("x.example"), BlockType.SNI_TIMEOUT, "tls"),
    (lambda: TlsReset("x.example"), BlockType.SNI_RST, "tls"),
    (lambda: HttpTimeout("http://x.example/"), BlockType.HTTP_TIMEOUT, "http"),
]


class TestFailureMapping:
    @pytest.mark.parametrize(
        "make,expected,klass", _CASES,
        ids=[expected.value for _make, expected, _k in _CASES],
    )
    def test_block_type_and_class(self, make, expected, klass):
        error = make()
        assert block_type_for(error) is expected
        assert failure_class(error) == klass
        assert failure_class_for(expected) == klass

    def test_unmapped_error_gives_none(self):
        assert block_type_for(ValueError("nope")) is None
        assert failure_class(ValueError("nope")) == "other"

    def test_subclass_resolves_and_caches(self):
        class SlowTimeout(ConnectTimeout):
            pass

        error = SlowTimeout("1.2.3.4")
        assert block_type_for(error) is BlockType.IP_TIMEOUT
        # Second lookup hits the type cache.
        assert block_type_for(SlowTimeout("5.6.7.8")) is BlockType.IP_TIMEOUT


class TestDnsExhaustiveness:
    """The satellite fix: unknown DnsError subclasses must raise, not
    silently classify as DNS_TIMEOUT."""

    @pytest.mark.parametrize(
        "make,expected",
        [(m, e) for m, e, k in _CASES if k == "dns"],
        ids=[e.value for _m, e, k in _CASES if k == "dns"],
    )
    def test_known_subclasses(self, make, expected):
        assert dns_block_type(make()) is expected

    def test_unknown_dns_subclass_raises(self):
        class ExoticDnsFailure(DnsError):
            pass

        with pytest.raises(UnclassifiedFailureError) as excinfo:
            dns_block_type(ExoticDnsFailure("x.example"))
        assert "ExoticDnsFailure" in str(excinfo.value)

    def test_non_dns_failure_raises(self):
        with pytest.raises(UnclassifiedFailureError):
            dns_block_type(ConnectTimeout("1.2.3.4"))


class TestTotality:
    def test_every_block_type_has_a_failure_class(self):
        assert set(BLOCK_TYPE_FAILURE_CLASS) == set(BlockType)

    def test_classes_are_the_known_five(self):
        assert set(BLOCK_TYPE_FAILURE_CLASS.values()) <= {
            "dns", "tcp", "tls", "http", "other"
        }

    def test_registered_failures_agree_with_class_map(self):
        for cls, block_type in FAILURE_BLOCK_TYPES:
            # The symptom's stage class must match the error's class
            # (DNS errors produce dns-stage symptoms, and so on).
            assert (
                BLOCK_TYPE_FAILURE_CLASS[block_type]
                == failure_class(cls.__new__(cls))
            )


# -- the Figure-4 transition table, end to end ---------------------------------

#: (url key, isp attr, expected status, expected DetectionOutcome.stages,
#:  expected trace stage sequence)
_DIRECT = ["local-dns", "tcp", "http", "blockpage-phase1"]
_TRANSITIONS = [
    ("small-unblocked", "isp_a", BlockStatus.NOT_BLOCKED, [], _DIRECT),
    (
        "youtube", "isp_a", BlockStatus.BLOCKED,
        [BlockType.BLOCK_PAGE], _DIRECT,
    ),
    (
        "table5/dns-servfail", "isp_a", BlockStatus.BLOCKED,
        [BlockType.DNS_SERVFAIL],
        ["local-dns", "global-dns", "tcp", "http", "blockpage-phase1"],
    ),
    (
        "table5/dns-refused", "isp_a", BlockStatus.BLOCKED,
        [BlockType.DNS_REFUSED],
        ["local-dns", "global-dns", "tcp", "http", "blockpage-phase1"],
    ),
    (
        "table5/tcp-ip", "isp_a", BlockStatus.BLOCKED,
        [BlockType.IP_TIMEOUT], ["local-dns", "tcp"],
    ),
    (
        "table5/tcp-ip+dns", "isp_a", BlockStatus.BLOCKED,
        [BlockType.DNS_SERVFAIL, BlockType.IP_TIMEOUT],
        ["local-dns", "global-dns", "tcp"],
    ),
    (
        "table5/http-blockpage", "isp_a", BlockStatus.BLOCKED,
        [BlockType.BLOCK_PAGE], _DIRECT,
    ),
    (
        "youtube", "isp_b", BlockStatus.BLOCKED,
        [BlockType.DNS_REDIRECT, BlockType.HTTP_TIMEOUT],
        ["local-dns", "global-dns", "tcp", "http"],
    ),
]


@pytest.fixture(scope="module")
def scenario():
    return pakistan_case_study(seed=29, with_proxy_fleet=False)


def _detect(scenario, isp, url):
    world = scenario.world
    client, access = world.add_client(
        f"tax-{world.network._ips.allocate()}", [isp]
    )
    ctx = world.new_ctx(client, access, stream=f"tax/{url}/{world.env.now}")
    return world.run_process(measure_direct_path(world, ctx, url))


class TestTransitionTable:
    @pytest.mark.parametrize(
        "key,isp,status,stages,sequence", _TRANSITIONS,
        ids=[f"{isp}-{key}" for key, isp, *_rest in _TRANSITIONS],
    )
    def test_outcome_and_trace(self, scenario, key, isp, status, stages, sequence):
        outcome = _detect(scenario, getattr(scenario, isp), scenario.urls[key])
        # Old golden semantics: DetectionOutcome status + stage evidence.
        assert outcome.status is status
        assert outcome.stages == stages
        # New session-trace semantics: the same facts, from the bus.
        trace = outcome.trace
        assert trace is not None and len(trace) > 0
        assert trace.stage_sequence() == sequence
        evidence = trace.evidence_types()
        for block_type in stages:
            assert block_type in evidence
        stamps = [event.t for event in trace]
        assert stamps == sorted(stamps)
