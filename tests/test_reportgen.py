"""Tests for the experiment report generator."""

import pathlib

import pytest

from repro.analysis.reportgen import collect_results, generate_report


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "test_table5_detection_times.txt").write_text(
        "Table 5 — detection times\nrow | value\n---+---\na | 1\n"
    )
    (tmp_path / "test_fig1a_proxies.txt").write_text(
        "Figure 1a — proxies\nbody here\n"
    )
    (tmp_path / "test_ablation_voting.txt").write_text(
        "Ablation — voting\nbody\n"
    )
    (tmp_path / "empty.txt").write_text("")
    return tmp_path


class TestCollect:
    def test_empty_files_skipped(self, results_dir):
        results = collect_results(results_dir)
        assert len(results) == 3

    def test_paper_order(self, results_dir):
        results = collect_results(results_dir)
        names = [r.name for r in results]
        assert names.index("test_fig1a_proxies") < names.index(
            "test_table5_detection_times"
        )
        assert names[-1] == "test_ablation_voting"

    def test_title_and_body_split(self, results_dir):
        results = collect_results(results_dir)
        table5 = next(r for r in results if "table5" in r.name)
        assert table5.title.startswith("Table 5")
        assert "row | value" in table5.body


class TestGenerate:
    def test_report_contains_every_artefact(self, results_dir):
        report = generate_report(results_dir)
        assert report.startswith("# C-Saw reproduction")
        assert "## Table 5 — detection times" in report
        assert "## Figure 1a — proxies" in report
        assert report.count("```text") == 3

    def test_empty_dir_message(self, tmp_path):
        report = generate_report(tmp_path)
        assert "No results found" in report

    def test_cli_report_command(self, results_dir, capsys):
        from repro.cli import main

        assert main(["report", "--results-dir", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 1
