"""Golden capture for the MeasurementSession refactor.

Runs a fixed-seed request battery (Pakistan case study, both ISPs, every
Table-5 blocking mechanism) plus a small pilot study and returns the
externally observable results — ``BlockStatus``, stage lists, serving
path, and PLTs — with every float rendered via ``float.hex()`` so the
comparison is bit-exact.

``tests/data/session_refactor_golden.json`` was generated from the
pre-refactor tree (commit c0895d8, the last commit before the session
layer landed); ``tests/test_determinism_regression.py`` asserts the
refactored request path reproduces it bit-for-bit.  Regenerate only when
a change *intends* to alter measurement results:

    PYTHONPATH=src python -c "import json; from tests._session_golden \
        import capture; print(json.dumps(capture(), indent=1, sort_keys=True))" \
        > tests/data/session_refactor_golden.json
"""

from __future__ import annotations

from repro.core import CSawClient, CSawConfig
from repro.workloads.pilot import PilotConfig, PilotStudy
from repro.workloads.scenarios import pakistan_case_study

#: Original PilotReport fields (pre-refactor vintage): new report fields
#: must not invalidate the golden, so the capture names these explicitly.
PILOT_FIELDS = (
    "users",
    "unique_blocked_urls",
    "unique_blocked_domains",
    "unique_ases",
    "distinct_block_types",
    "urls_dns_blocked",
    "urls_tcp_timeout",
    "urls_blockpage",
    "unique_updates",
    "cdn_domains_detected",
    "full_syncs",
    "delta_syncs",
    "sync_rows_received",
)

_URL_KEYS = (
    "small-unblocked",
    "youtube",
    "table5/dns-servfail",
    "table5/dns-refused",
    "table5/tcp-ip",
    "table5/tcp-ip+dns",
)


def _run_request(world, client, url):
    def proc():
        response = yield from client.request(url)
        yield response.measurement_process
        return response

    return world.run_process(proc())


def capture() -> dict:
    scenario = pakistan_case_study(seed=13, with_proxy_fleet=False)
    world = scenario.world

    def make(name, isp, config=None):
        return CSawClient(
            world,
            name,
            [isp],
            transports=scenario.make_transports(name),
            config=config,
        )

    client_a = make("golden-a", scenario.isp_a)
    client_b = make("golden-b", scenario.isp_b)
    probing = make(
        "golden-probe", scenario.isp_a, config=CSawConfig(probe_probability=1.0)
    )

    plan = [(client_a, scenario.urls[key]) for key in _URL_KEYS]
    plan += [
        # Blocked-flow repeat: the second access rides the local fix.
        (client_a, scenario.urls["youtube"]),
        (client_a, "http://no-such-site.example/"),
        # ISP-B: DNS redirect + HTTP drop multi-stage, then SNI filtering.
        (client_b, scenario.urls["youtube"]),
        (client_b, "https://www.youtube.com/"),
        (client_b, scenario.urls["youtube"]),
        # Probabilistic direct probe on the blocked flow (p = 1).
        (probing, scenario.urls["table5/tcp-ip"]),
        (probing, scenario.urls["table5/tcp-ip"]),
    ]

    requests = []
    for client, url in plan:
        response = _run_request(world, client, url)
        requests.append(
            {
                "client": client.name,
                "url": url,
                "status": response.status.value,
                "stages": [stage.value for stage in response.stages],
                "path": response.path,
                "ok": response.ok,
                "corrected": response.corrected,
                "probe_ran": response.probe_ran,
                "plt": float(response.plt).hex(),
                "effective_plt": float(response.effective_plt).hex(),
                "detection_time": (
                    float(response.detection.detection_time).hex()
                    if response.detection is not None
                    else None
                ),
            }
        )

    study = PilotStudy(
        PilotConfig(
            seed=11,
            n_users=6,
            n_sites=120,
            requests_per_user=10,
            duration_days=8.0,
            n_ases=4,
        )
    )
    report = study.run()
    return {
        "requests": requests,
        "scenario_clock": float(world.env.now).hex(),
        "pilot": {name: getattr(report, name) for name in PILOT_FIELDS},
        "pilot_clock": float(study.world.env.now).hex(),
    }
