"""Tests for csaw-analyze, the whole-program determinism analyzer.

Covers the project index, the conservative call graph (worker-dispatcher
edges, attribute-name method resolution, cycle tolerance), every CSA
rule against its fixture package under ``tests/data/analyze_fixtures/``
(positive, negative, suppression), the baseline round-trip, the
``graph`` subcommand, CLI behavior — and the two repo-level contracts:
the shipped tree is analyzer-clean at the committed empty baseline, and
a planted module-global write in a worker helper is caught.
"""

import json
import shutil
import textwrap
import time
from pathlib import Path

import pytest

from repro.devtools.analyze.callgraph import build_call_graph
from repro.devtools.analyze.index import ProjectIndex, module_name_for
from repro.devtools.analyze.main import (
    AnalyzeConfig,
    analyze_paths,
    analyze_project,
    build_project,
    load_config,
    main,
)
from repro.devtools import config as devconfig
from repro.devtools.framework import suppressed_lines

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "analyze_fixtures"


def run_fixture(name, **kwargs):
    """Analyze one fixture package with its directory as project root."""
    root = str(FIXTURES / name)
    config = AnalyzeConfig(root=root, **kwargs)
    return analyze_paths([root], config)


def build_index(sources):
    """Index in-memory modules keyed by project-relative path."""
    index = ProjectIndex(root="/proj")
    for relpath, source in sources.items():
        index.add_source(
            textwrap.dedent(source), "/proj/" + relpath, relpath
        )
    index._finalize()
    return index


def by_file(violations):
    mapping = {}
    for violation in violations:
        mapping.setdefault(Path(violation.path).name, []).append(violation)
    return mapping


@pytest.fixture(scope="module")
def real_project():
    """The shipped tree, indexed once for all repo-level assertions."""
    config = load_config(str(REPO / "pyproject.toml"), str(REPO / "src"))
    return build_project([str(REPO / "src")], config)


# -- project index -------------------------------------------------------------


class TestProjectIndex:
    def test_module_names_strip_src_and_init(self):
        assert module_name_for("src/repro/core/fleet.py") == "repro.core.fleet"
        assert module_name_for("src/repro/runner/__init__.py") == "repro.runner"
        assert module_name_for("tool.py") == "tool"

    def test_relative_imports_resolve_against_package(self):
        index = build_index(
            {
                "src/pkg/__init__.py": "",
                "src/pkg/core/__init__.py": "",
                "src/pkg/core/deep.py": """
                from ..runner import run
                """,
                "src/pkg/runner.py": """
                def run():
                    return 1
                """,
            }
        )
        deep = index.modules["pkg.core.deep"]
        assert deep.imports["run"] == "pkg.runner.run"
        assert index.resolve(deep, ["run"]) == "pkg.runner.run"

    def test_reexport_facade_followed(self):
        index = build_index(
            {
                "src/pkg/__init__.py": """
                from .core import run
                """,
                "src/pkg/core.py": """
                def run():
                    return 1
                """,
                "src/other.py": """
                import pkg

                def use():
                    return pkg.run()
                """,
            }
        )
        other = index.modules["other"]
        assert index.resolve(other, ["pkg", "run"]) == "pkg.core.run"

    def test_mutable_globals_marked(self):
        index = build_index(
            {
                "m.py": """
                CACHE = {}
                LIMIT = 3
                NAMES = ["a"]
                """
            }
        )
        assert index.module_globals["m.CACHE"].mutable
        assert index.module_globals["m.NAMES"].mutable
        assert not index.module_globals["m.LIMIT"].mutable


# -- call graph ----------------------------------------------------------------


class TestCallGraph:
    def test_trialspec_callable_becomes_worker_entrypoint(self):
        root = str(FIXTURES / "csa101")
        index = ProjectIndex.build([root], root)
        graph = build_call_graph(index)
        assert "work.entry" in graph.worker_entrypoints
        assert graph.worker_reachable["work.helper"] == "work.entry"
        assert "work.middle" in graph.callees("work.entry")
        assert "work.launch" not in graph.worker_reachable

    def test_run_seed_sweep_dispatcher(self):
        index = build_index(
            {
                "w.py": """
                def trial(seed):
                    return seed

                def launch():
                    return run_seed_sweep(trial, 7, 3)
                """
            }
        )
        graph = build_call_graph(index)
        assert "w.trial" in graph.worker_entrypoints

    def test_executor_map_dispatcher(self):
        index = build_index(
            {
                "w.py": """
                def job(x):
                    return x

                def launch(pool, xs):
                    return list(pool.map(job, xs))
                """
            }
        )
        graph = build_call_graph(index)
        assert "w.job" in graph.worker_entrypoints

    def test_builtin_map_is_not_a_dispatcher(self):
        index = build_index(
            {
                "w.py": """
                def job(x):
                    return x

                def launch(xs):
                    return list(map(job, xs))
                """
            }
        )
        graph = build_call_graph(index)
        assert "w.job" not in graph.worker_entrypoints

    def test_method_calls_resolve_by_attribute_name(self):
        index = build_index(
            {
                "a.py": """
                class Runner:
                    def step(self):
                        return 1

                def drive(obj):
                    return obj.step()
                """
            }
        )
        graph = build_call_graph(index)
        assert "a.Runner.step" in graph.callees("a.drive")

    def test_cycles_are_tolerated(self):
        index = build_index(
            {
                "c.py": """
                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    return ping(n - 1) if n else 0

                def launch():
                    return TrialSpec("t", ping)
                """
            }
        )
        graph = build_call_graph(index)
        assert graph.worker_reachable["c.ping"] == "c.ping"
        assert graph.worker_reachable["c.pong"] == "c.ping"

    def test_external_module_chains_add_no_edges(self):
        index = build_index(
            {
                "e.py": """
                import os

                def f(p):
                    return os.path.join(p, "x")
                """
            }
        )
        graph = build_call_graph(index)
        assert graph.callees("e.f") == {}

    def test_extra_dispatchers_option(self):
        index = build_index(
            {
                "x.py": """
                def job(x):
                    return x

                def launch(xs):
                    return fan_out(job, xs)
                """
            }
        )
        assert "x.job" not in build_call_graph(index).worker_entrypoints
        graph = build_call_graph(index, extra_dispatchers=("fan_out",))
        assert "x.job" in graph.worker_entrypoints


# -- CSA rules over the fixture packages ---------------------------------------


class TestCSA101:
    def test_worker_reachable_writes_flagged(self):
        files = by_file(run_fixture("csa101"))
        helper_hits = [
            v for v in files.get("work.py", []) if v.code == "CSA101"
        ]
        assert len(helper_hits) == 2
        messages = " | ".join(v.message for v in helper_hits)
        assert "work.CACHE" in messages
        assert "work.TALLY" in messages
        assert "worker-reachable from work.entry" in messages

    def test_threaded_state_is_clean(self):
        files = by_file(run_fixture("csa101"))
        assert "clean.py" not in files

    def test_inline_suppression_honored(self):
        files = by_file(run_fixture("csa101"))
        assert "suppressed.py" not in files


class TestCSA102:
    def test_cross_module_collision_flagged_at_both_sites(self):
        files = by_file(run_fixture("csa102"))
        a = [v for v in files.get("collide_a.py", []) if v.code == "CSA102"]
        b = [v for v in files.get("collide_b.py", []) if v.code == "CSA102"]
        assert len(a) == 1 and len(b) == 1
        assert "shared-pool" in a[0].message
        assert "collide_b" in a[0].message

    def test_dynamic_stream_name_flagged(self):
        files = by_file(run_fixture("csa102"))
        dyn = [v for v in files.get("dynamic.py", []) if v.code == "CSA102"]
        assert len(dyn) == 1
        assert "dynamically computed" in dyn[0].message

    def test_constant_seed_in_worker_code_flagged(self):
        files = by_file(run_fixture("csa102"))
        seeded = [v for v in files.get("seeded.py", []) if v.code == "CSA102"]
        assert len(seeded) == 1
        assert "derive_seed" in seeded[0].message

    def test_threaded_forked_and_prefixed_names_clean(self):
        files = by_file(run_fixture("csa102"))
        assert "clean.py" not in files

    def test_plane_group_seeding_audited(self):
        """The fleet plane-group shape: ``random.Random(derive_seed(...))``
        is sanctioned in worker code, a constant-seeded plane group is
        the hazard."""
        files = by_file(run_fixture("csa102"))
        planes = [v for v in files.get("planes.py", []) if v.code == "CSA102"]
        assert len(planes) == 1
        assert "stale_plane_group" in planes[0].message
        assert "derive_seed" in planes[0].message


class TestCSA103:
    def test_escape_through_helper_layers_flagged(self):
        files = by_file(run_fixture("csa103"))
        mid = [v for v in files.get("mid.py", []) if v.code == "CSA103"]
        assert len(mid) == 2
        messages = " | ".join(v.message for v in mid)
        assert "wall-clock sink time.time()" in messages
        assert "mid.caller -> mid.helper -> sinks.now" in messages

    def test_direct_sink_site_is_lints_finding_not_ours(self):
        files = by_file(run_fixture("csa103"))
        assert "sinks.py" not in files

    def test_allow_glob_sanctions_a_file(self):
        violations = run_fixture("csa103", allow={"CSA103": ["mid.py"]})
        assert violations == []


class TestCSA104:
    def test_spec_parameter_mutations_flagged(self):
        files = by_file(run_fixture("csa104"))
        hits = [v for v in files.get("mutate.py", []) if v.code == "CSA104"]
        assert len(hits) == 2
        messages = " | ".join(v.message for v in hits)
        assert "attribute assignment" in messages
        assert ".append() mutation" in messages
        assert "custom.py" not in files  # MySpec not a spec class by default

    def test_spec_modules_option_extends_the_class_set(self):
        files = by_file(
            run_fixture("csa104", options={"spec-modules": ["myspec"]})
        )
        hits = [v for v in files.get("custom.py", []) if v.code == "CSA104"]
        assert len(hits) == 1


class TestCSA105:
    def test_call_sourced_set_order_escapes_flagged(self):
        files = by_file(run_fixture("csa105"))
        hits = [
            v for v in files.get("public_api.py", []) if v.code == "CSA105"
        ]
        flagged_lines = {v.line for v in hits}
        source = (FIXTURES / "csa105" / "public_api.py").read_text()
        lines = {
            name: next(
                i
                for i, text in enumerate(source.splitlines(), 1)
                if f"def {name}(" in text
            )
            for name in ("report", "digest", "listing")
        }
        assert len(hits) == 3
        for name, def_line in lines.items():
            assert any(
                def_line < line < def_line + 3 for line in flagged_lines
            ), name

    def test_returning_the_set_itself_is_fine(self):
        files = by_file(run_fixture("csa105"))
        messages = " | ".join(
            v.message for v in files.get("public_api.py", [])
        )
        assert "layered" in messages  # named as the *source*...
        flagged = {v.line for v in files.get("public_api.py", [])}
        source = (FIXTURES / "csa105" / "public_api.py").read_text()
        layered_line = next(
            i
            for i, text in enumerate(source.splitlines(), 1)
            if "def layered(" in text
        )
        assert layered_line + 1 not in flagged  # ...but not flagged itself

    def test_sorted_and_private_functions_clean(self):
        files = by_file(run_fixture("csa105"))
        assert "clean.py" not in files


# -- suppression marker separation ---------------------------------------------


class TestMarkers:
    def test_analyze_marker_does_not_hide_from_lint(self):
        src = "x = 1  # csaw-analyze: disable=CSA101\n"
        assert suppressed_lines(src) == {}
        assert 1 in suppressed_lines(src, marker="csaw-analyze")

    def test_lint_marker_does_not_hide_from_analyze(self):
        src = "x = 1  # csaw-lint: disable=CSL003\n"
        assert 1 in suppressed_lines(src)
        assert suppressed_lines(src, marker="csaw-analyze") == {}


# -- baseline round-trip -------------------------------------------------------


class TestBaseline:
    def test_round_trip_grandfathers_existing_findings(self, tmp_path):
        root = str(FIXTURES / "csa101")
        config = AnalyzeConfig(root=root)
        violations = analyze_paths([root], config)
        assert violations
        baseline_path = tmp_path / "baseline.json"
        devconfig.write_baseline(violations, str(baseline_path), root)
        baseline = devconfig.load_baseline(str(baseline_path))
        fresh, grandfathered = devconfig.apply_baseline(
            violations, baseline, root
        )
        assert fresh == []
        assert grandfathered == len(violations)


# -- repo-level contracts ------------------------------------------------------


class TestRepoEnforcement:
    def test_src_tree_is_analyzer_clean(self, real_project):
        violations = analyze_project(real_project)
        assert violations == [], [v.render() for v in violations]

    def test_worker_reachable_covers_fleet_and_pilot(self, real_project):
        reachable = real_project.graph.worker_reachable
        assert "repro.core.fleet._fleet_partition" in reachable
        assert "repro.core.fleet.run_fleet_storm" in reachable
        assert "repro.workloads.pilot._pilot_trial" in reachable
        entrypoints = real_project.graph.worker_entrypoints
        assert "repro.core.fleet._fleet_partition" in entrypoints
        assert "repro.workloads.pilot._pilot_trial" in entrypoints

    def test_full_run_is_fast_enough(self):
        config = load_config(str(REPO / "pyproject.toml"), str(REPO / "src"))
        started = time.perf_counter()
        project = build_project([str(REPO / "src")], config)
        analyze_project(project)
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0, f"full analyzer run took {elapsed:.1f}s"

    def test_planted_worker_global_write_is_caught(self, tmp_path):
        """Regression harness for the whole pipeline: copy the real tree,
        wrap the fleet worker entrypoint so it calls a planted helper
        that bumps a module-global counter, and require CSA101 to catch
        it via the ``run_fleet_storm_sharded`` worker path."""
        srcdir = tmp_path / "src"
        shutil.copytree(
            REPO / "src" / "repro",
            srcdir / "repro",
            ignore=shutil.ignore_patterns("__pycache__", "*.egg-info"),
        )
        fleet = srcdir / "repro" / "core" / "fleet.py"
        text = fleet.read_text()
        marker = "def _fleet_partition("
        assert marker in text
        text = text.replace(
            marker,
            "def _fleet_partition(*__planted_args, **__planted_kwargs):\n"
            "    _planted_probe(0)\n"
            "    return __orig_fleet_partition("
            "*__planted_args, **__planted_kwargs)\n"
            "\n\n"
            "def __orig_fleet_partition(",
            1,
        )
        text += (
            "\n\n_PLANTED_COUNTS = {}\n\n\n"
            "def _planted_probe(part):\n"
            "    _PLANTED_COUNTS[part] = _PLANTED_COUNTS.get(part, 0) + 1\n"
            "    return part\n"
        )
        fleet.write_text(text)
        config = AnalyzeConfig(root=str(tmp_path))
        violations = analyze_paths([str(srcdir)], config)
        planted = [
            v
            for v in violations
            if v.code == "CSA101" and "_planted_probe" in v.message
        ]
        assert planted, [v.render() for v in violations]
        assert any("_PLANTED_COUNTS" in v.message for v in planted)
        assert any(
            "repro.core.fleet._fleet_partition" in v.message for v in planted
        )


# -- CLI -----------------------------------------------------------------------


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("CSA101", "CSA102", "CSA103", "CSA104", "CSA105"):
            assert code in out

    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(REPO / "src")]) == 0

    def test_findings_exit_nonzero(self, capsys):
        assert main([str(FIXTURES / "csa101")]) == 1
        out = capsys.readouterr().out
        assert "CSA101" in out

    def test_select_filters_rules(self, capsys):
        assert main([str(FIXTURES / "csa101"), "--select", "CSA102"]) == 0

    def test_json_format(self, capsys):
        code = main([str(FIXTURES / "csa101"), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"]
        assert all(
            v["code"] == "CSA101" for v in payload["violations"]
        )

    def test_graph_subcommand_emits_worker_set(self, capsys, tmp_path):
        out_path = tmp_path / "graph.json"
        assert (
            main(["graph", str(REPO / "src"), "--output", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        for key in (
            "edges",
            "modules",
            "n_edges",
            "n_functions",
            "worker_entrypoints",
            "worker_reachable",
        ):
            assert key in payload
        assert "repro.core.fleet._fleet_partition" in payload["worker_reachable"]
        assert "repro.core.fleet.run_fleet_storm" in payload["worker_reachable"]
        assert (
            "repro.workloads.pilot._pilot_trial" in payload["worker_reachable"]
        )

    def test_write_baseline_then_clean(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        fixture = str(FIXTURES / "csa101")
        assert main([fixture, "--write-baseline", str(baseline)]) == 0
        assert main([fixture, "--baseline", str(baseline)]) == 0
        assert main([fixture]) == 1
