"""Tests for the voting ledger and the global database server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.globaldb import RegistrationError, ReportItem, ServerDB
from repro.core.records import BlockType
from repro.core.voting import VotingLedger


class TestVotingLedger:
    def test_single_client_single_url_full_vote(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        stats = ledger.stats("http://a.com/", 1)
        assert stats.votes == pytest.approx(1.0)
        assert stats.reporters == 1

    def test_vote_spread_over_d_urls(self):
        ledger = VotingLedger()
        keys = [(f"http://u{i}.com/", 1) for i in range(4)]
        ledger.set_client_reports("c1", keys)
        for url, asn in keys:
            assert ledger.stats(url, asn).votes == pytest.approx(0.25)

    def test_spammer_dilutes_own_votes(self):
        """A malicious client reporting many URLs gives each ~nothing,
        while two honest clients beat it on the contested URL."""
        ledger = VotingLedger()
        spam = [(f"http://spam{i}.com/", 1) for i in range(100)]
        ledger.set_client_reports("evil", spam + [("http://real.com/", 1)])
        ledger.set_client_reports("honest-1", [("http://real.com/", 1)])
        ledger.set_client_reports("honest-2", [("http://real.com/", 1)])
        real = ledger.stats("http://real.com/", 1)
        fake = ledger.stats("http://spam0.com/", 1)
        assert real.votes > 2.0
        assert fake.votes < 0.02
        assert fake.reporters == 1

    def test_adding_reports_renormalizes(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        assert ledger.stats("http://a.com/", 1).votes == pytest.approx(1.0)
        ledger.add_client_reports("c1", [("http://b.com/", 1)])
        assert ledger.stats("http://a.com/", 1).votes == pytest.approx(0.5)
        assert ledger.stats("http://b.com/", 1).votes == pytest.approx(0.5)

    def test_per_as_entries_are_distinct(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        assert ledger.stats("http://a.com/", 2).reporters == 0

    def test_revoke_removes_influence(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        ledger.revoke_client("c1")
        assert ledger.stats("http://a.com/", 1).reporters == 0
        assert ledger.client_count() == 0

    @given(
        st.dictionaries(
            st.sampled_from([f"c{i}" for i in range(6)]),
            st.lists(
                st.sampled_from([(f"http://u{i}.com/", 1) for i in range(5)]),
                max_size=5,
                unique=True,
            ),
            max_size=6,
        )
    )
    def test_total_vote_mass_bounded_by_client_count(self, assignments):
        ledger = VotingLedger()
        for client, keys in assignments.items():
            ledger.set_client_reports(client, keys)
        total = sum(
            ledger.stats(f"http://u{i}.com/", 1).votes for i in range(5)
        )
        active = sum(1 for keys in assignments.values() if keys)
        assert total == pytest.approx(active)


class TestServerDB:
    def make_reports(self, urls, asn=17557):
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=1.0,
            )
            for url in urls
        ]

    def test_registration_issues_unique_uuids(self):
        server = ServerDB()
        uuids = {server.register(now=float(i)) for i in range(50)}
        assert len(uuids) == 50
        assert server.client_count == 50

    def test_failed_captcha_rejected(self):
        server = ServerDB()
        with pytest.raises(RegistrationError):
            server.register(now=0.0, captcha_passed=False)
        assert server.rejected_registrations == 1

    def test_unregistered_client_cannot_post(self):
        server = ServerDB()
        with pytest.raises(RegistrationError):
            server.post_update("nope", self.make_reports(["http://a.com/"]), 1.0)

    def test_post_and_download_roundtrip(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        accepted = server.post_update(
            uuid, self.make_reports(["http://a.com/", "http://b.com/"]), now=5.0
        )
        assert accepted == 2
        entries = server.blocked_for_as(17557, now=6.0)
        assert {e.url for e in entries} == {"http://a.com/", "http://b.com/"}
        assert all(e.posted_at == 5.0 for e in entries)
        assert server.blocked_for_as(999, now=6.0) == []

    def test_repeat_posts_merge_stages(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        server.post_update(
            uuid,
            [
                ReportItem(
                    url="http://a.com/",
                    asn=17557,
                    stages=(BlockType.DNS_SERVFAIL,),
                    measured_at=2.0,
                )
            ],
            now=2.0,
        )
        entry = server.entry("http://a.com/", 17557)
        assert BlockType.BLOCK_PAGE in entry.stages
        assert BlockType.DNS_SERVFAIL in entry.stages
        assert server.update_count == 2

    def test_confidence_filter_blocks_lone_spammer(self):
        server = ServerDB()
        evil = server.register(now=0.0)
        honest = [server.register(now=float(i + 1)) for i in range(3)]
        spam_urls = [f"http://spam{i}.com/" for i in range(50)]
        server.post_update(evil, self.make_reports(spam_urls), now=2.0)
        for uuid in honest:
            server.post_update(uuid, self.make_reports(["http://real.com/"]), now=3.0)

        trusting = server.blocked_for_as(17557, now=4.0)
        assert len(trusting) == 51  # no filter: spam included
        careful = server.blocked_for_as(17557, now=4.0, min_reporters=2)
        assert [e.url for e in careful] == ["http://real.com/"]
        by_votes = server.blocked_for_as(17557, now=4.0, min_votes=0.5)
        assert [e.url for e in by_votes] == ["http://real.com/"]

    def test_entry_ttl_expires_stale_reports(self):
        server = ServerDB(entry_ttl=100.0)
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        assert server.blocked_for_as(17557, now=50.0)
        assert server.blocked_for_as(17557, now=200.0) == []

    def test_revoke_drops_client_and_votes(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        server.revoke(uuid)
        assert not server.is_registered(uuid)
        assert server.stats_for("http://a.com/", 17557).reporters == 0

    def test_post_update_normalizes_once_consistently(self):
        """The entry key and the vouch-set key must agree for denormalized
        input — a mismatch would store an entry nobody's vote backs."""
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(
            uuid, self.make_reports(["HTTP://A.com:80/Path"]), now=1.0
        )
        entry = server.entry("http://a.com/Path", 17557)
        assert entry is not None
        assert entry.url == "http://a.com/Path"
        stats = server.stats_for("http://a.com/Path", 17557)
        assert stats.reporters == 1
        assert stats.votes == pytest.approx(1.0)
        assert server.blocked_for_as(17557, now=2.0, min_reporters=1) == [entry]

    def test_every_stored_entry_has_a_reporter(self):
        """The no-orphan invariant the accept-all pull fast path relies on."""
        server = ServerDB()
        uuids = [server.register(now=float(i)) for i in range(3)]
        for uuid in uuids:
            server.post_update(
                uuid, self.make_reports(["http://a.com/", "http://b.com/"]),
                now=1.0,
            )
        server.post_dissent(uuids[0], "http://a.com/", 17557, now=2.0)
        server.revoke(uuids[1])
        for entry in server.all_entries():
            assert server.stats_for(entry.url, entry.asn).reporters >= 1


class TestIncrementalVotingExactness:
    """The incremental s_{j,k} must match the from-scratch recompute
    *exactly* (bit-identical floats), mirroring the compiled-policy
    linear_on_* reference pattern."""

    URLS = [f"http://u{i}.example.com/" for i in range(5)]
    ASNS = [17557, 38193]
    CLIENTS = [f"c{i}" for i in range(5)]

    @staticmethod
    def assert_exact(ledger, urls, asns):
        for url in urls:
            for asn in asns:
                incremental = ledger.stats(url, asn)
                reference = ledger.recompute_stats(url, asn)
                assert incremental == reference  # exact, not approx

    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("set"),
                    st.sampled_from(CLIENTS),
                    st.lists(
                        st.tuples(
                            st.sampled_from(URLS), st.sampled_from(ASNS)
                        ),
                        max_size=6,
                        unique=True,
                    ),
                ),
                st.tuples(
                    st.just("add"),
                    st.sampled_from(CLIENTS),
                    st.lists(
                        st.tuples(
                            st.sampled_from(URLS), st.sampled_from(ASNS)
                        ),
                        max_size=4,
                        unique=True,
                    ),
                ),
                st.tuples(
                    st.just("revoke"),
                    st.sampled_from(CLIENTS),
                    st.just([]),
                ),
            ),
            max_size=30,
        )
    )
    def test_ledger_sequences(self, ops):
        ledger = VotingLedger()
        for op, client, keys in ops:
            if op == "set":
                ledger.set_client_reports(client, keys)
            elif op == "add":
                ledger.add_client_reports(client, keys)
            else:
                ledger.revoke_client(client)
        self.assert_exact(ledger, self.URLS, self.ASNS)

    @settings(deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("post"),
                    st.integers(0, 3),
                    st.lists(st.integers(0, 4), min_size=1, max_size=4),
                ),
                st.tuples(
                    st.just("dissent"),
                    st.integers(0, 3),
                    st.integers(0, 4),
                ),
                st.tuples(st.just("revoke"), st.integers(0, 3), st.just(0)),
            ),
            max_size=25,
        )
    )
    def test_server_add_dissent_revoke_sequences(self, ops):
        """Randomized add/dissent/revoke through the ServerDB API keeps the
        incremental ledger in exact agreement with the recompute."""
        server = ServerDB(entry_ttl=None)
        uuids = [server.register(now=float(i)) for i in range(4)]
        revoked = set()
        asn = 17557
        for op, who, what in ops:
            uuid = uuids[who]
            if uuid in revoked:
                continue
            if op == "post":
                items = [
                    ReportItem(
                        url=self.URLS[i],
                        asn=asn,
                        stages=(BlockType.BLOCK_PAGE,),
                        measured_at=1.0,
                    )
                    for i in what
                ]
                server.post_update(uuid, items, now=2.0)
            elif op == "dissent":
                server.post_dissent(uuid, self.URLS[what], asn, now=3.0)
            else:
                server.revoke(uuid)
                revoked.add(uuid)
        self.assert_exact(server.voting, self.URLS, [asn])
        for entry in server.all_entries():
            assert server.voting.has_reporters(entry.url, entry.asn)

    def test_affected_keys_reported(self):
        ledger = VotingLedger()
        a, b, c = [(f"http://k{i}.com/", 1) for i in range(3)]
        assert ledger.set_client_reports("c1", [a]) == {a}
        # Growing the set dilutes the vote on *every* key: all affected.
        assert ledger.add_client_reports("c1", [b, c]) == {a, b, c}
        # d changes 3 -> 2, so even the staying keys' weights move.
        assert ledger.set_client_reports("c1", [a, b]) == {a, b, c}
        # Same-size swap: the staying key's weight is untouched.
        assert ledger.set_client_reports("c1", [a, c]) == {b, c}
        assert ledger.revoke_client("c1") == {a, c}


class TestDeltaSync:
    ASN = 17557

    def make_reports(self, urls, asn=ASN):
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=1.0,
            )
            for url in urls
        ]

    def test_first_pull_is_full_snapshot(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(
            uuid, self.make_reports(["http://a.com/", "http://b.com/"]), now=1.0
        )
        result = server.sync_for_as(self.ASN, now=2.0)
        assert result.full
        assert {e.url for e in result.entries} == {
            "http://a.com/",
            "http://b.com/",
        }
        assert result.removed == []
        assert result.version == server.version_for_as(self.ASN)
        assert server.full_syncs_served == 1

    def test_unknown_as_pull_is_empty_full(self):
        server = ServerDB()
        result = server.sync_for_as(999, now=1.0)
        assert result.full
        assert result.entries == [] and result.removed == []
        assert result.version == 0

    def test_delta_transfers_only_changed_entries(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(
            uuid,
            self.make_reports([f"http://u{i}.com/" for i in range(20)]),
            now=1.0,
        )
        first = server.sync_for_as(self.ASN, now=2.0)
        # A *different* client posts the new URL — had the same client
        # posted it, every prior entry's vote mass would dilute and all
        # 20 would legitimately re-travel.
        other = server.register(now=2.5)
        server.post_update(other, self.make_reports(["http://new.com/"]), now=3.0)
        delta = server.sync_for_as(self.ASN, now=4.0, since_version=first.version)
        assert not delta.full
        assert [e.url for e in delta.entries] == ["http://new.com/"]
        assert delta.removed == []
        assert delta.transferred == 1
        assert server.delta_syncs_served == 1

    def test_current_version_yields_empty_delta(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        first = server.sync_for_as(self.ASN, now=2.0)
        again = server.sync_for_as(
            self.ASN, now=3.0, since_version=first.version
        )
        assert not again.full
        assert again.transferred == 0
        assert again.version == first.version

    def test_future_version_falls_back_to_full(self):
        """A version the shard never issued (e.g. client state from a
        different server incarnation) cannot be diffed against."""
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        result = server.sync_for_as(
            self.ASN, now=2.0, since_version=server.version_for_as(self.ASN) + 10
        )
        assert result.full
        assert [e.url for e in result.entries] == ["http://a.com/"]

    def test_log_truncation_forces_full_snapshot(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        stale_version = server.version_for_as(self.ASN)
        # Churn the same entry until the bounded log forgets the old rows.
        for i in range(600):
            server.post_update(
                uuid, self.make_reports(["http://a.com/"]), now=2.0 + i
            )
        result = server.sync_for_as(
            self.ASN, now=700.0, since_version=stale_version
        )
        assert result.full  # stale_version < shard.floor

    def test_ttl_eviction_appears_in_removal_diff(self):
        server = ServerDB(entry_ttl=100.0)
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://old.com/"]), now=1.0)
        first = server.sync_for_as(self.ASN, now=2.0)
        assert [e.url for e in first.entries] == ["http://old.com/"]
        server.post_update(uuid, self.make_reports(["http://new.com/"]), now=500.0)
        delta = server.sync_for_as(
            self.ASN, now=500.0, since_version=first.version
        )
        assert not delta.full
        assert [e.url for e in delta.entries] == ["http://new.com/"]
        assert delta.removed == ["http://old.com/"]

    def test_dissent_appears_in_removal_diff(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(
            uuid, self.make_reports(["http://a.com/", "http://b.com/"]), now=1.0
        )
        first = server.sync_for_as(self.ASN, now=2.0)
        assert server.post_dissent(uuid, "http://a.com/", self.ASN, now=3.0)
        delta = server.sync_for_as(self.ASN, now=4.0, since_version=first.version)
        assert not delta.full
        assert delta.removed == ["http://a.com/"]
        # b's stats moved too (d shrank), so it may legitimately re-travel.
        assert all(e.url == "http://b.com/" for e in delta.entries)

    def test_vote_dilution_crosses_threshold_in_delta(self):
        """An entry can stop passing min_votes without ever being
        re-posted: its reporter spreading over more URLs dilutes the vote
        mass.  The delta must carry that as a removal."""
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://x.com/"]), now=1.0)
        first = server.sync_for_as(self.ASN, now=2.0, min_votes=0.6)
        assert [e.url for e in first.entries] == ["http://x.com/"]
        # Same client reports four more URLs in a *different* AS: d goes
        # 1 -> 5, so x.com's vote mass drops to 0.2 < 0.6.
        server.post_update(
            uuid,
            self.make_reports(
                [f"http://other{i}.com/" for i in range(4)], asn=38193
            ),
            now=3.0,
        )
        delta = server.sync_for_as(
            self.ASN, now=4.0, since_version=first.version, min_votes=0.6
        )
        assert not delta.full
        assert delta.entries == []
        assert delta.removed == ["http://x.com/"]

    def test_revoked_client_entries_in_removal_diff(self):
        """Revocation erases the client's vote mass from the incremental
        stats; entries only it vouched for leave via the removal diff,
        co-reported entries survive."""
        server = ServerDB()
        bad = server.register(now=0.0)
        good = server.register(now=0.0)
        server.post_update(
            bad, self.make_reports(["http://solo.com/", "http://shared.com/"]),
            now=1.0,
        )
        server.post_update(good, self.make_reports(["http://shared.com/"]), now=1.0)
        first = server.sync_for_as(self.ASN, now=2.0)
        assert {e.url for e in first.entries} == {
            "http://solo.com/",
            "http://shared.com/",
        }
        server.revoke(bad)
        assert server.stats_for("http://solo.com/", self.ASN).reporters == 0
        shared = server.stats_for("http://shared.com/", self.ASN)
        assert shared.reporters == 1
        assert shared.votes == pytest.approx(1.0)
        delta = server.sync_for_as(self.ASN, now=3.0, since_version=first.version)
        assert not delta.full
        assert delta.removed == ["http://solo.com/"]
        assert [e.url for e in delta.entries] == ["http://shared.com/"]


class TestBatchCache:
    """Built SyncBatches are cached per shard and invalidated by any
    shard change — serving a cohort between changes constructs each
    distinct batch once (the fleet sweep's server-side cost model)."""

    ASN = 17557

    def make_reports(self, urls, asn=ASN):
        return [
            ReportItem(url=url, asn=asn, stages=(BlockType.BLOCK_PAGE,),
                       measured_at=1.0)
            for url in urls
        ]

    def test_repeat_pulls_share_one_built_batch(self):
        server = ServerDB(entry_ttl=None)
        uuid = server.register(now=0.0)
        server.post_update(
            uuid, self.make_reports(["http://a.com/", "http://b.com/"]), now=1.0
        )
        first = server.sync_batch_for_as(self.ASN, now=2.0)
        again = server.sync_batch_for_as(self.ASN, now=3.0)
        assert again is first  # cache hit: the identical object
        # Serve counters still count every pull, cached or not.
        assert server.full_syncs_served == 2

    def test_any_change_invalidates_cached_batches(self):
        server = ServerDB(entry_ttl=None)
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        stale = server.sync_batch_for_as(self.ASN, now=2.0)
        other = server.register(now=2.5)
        server.post_update(other, self.make_reports(["http://b.com/"]), now=3.0)
        fresh = server.sync_batch_for_as(self.ASN, now=4.0)
        assert fresh is not stale
        assert set(fresh.urls) == {"http://a.com/", "http://b.com/"}
        # Dissent and revocation also funnel through mark_changed.
        delta = server.sync_batch_for_as(
            self.ASN, now=5.0, since_version=stale.version
        )
        assert server.sync_batch_for_as(
            self.ASN, now=5.5, since_version=stale.version
        ) is delta
        server.post_dissent(other, "http://b.com/", self.ASN, now=6.0)
        after = server.sync_batch_for_as(
            self.ASN, now=7.0, since_version=stale.version
        )
        assert after is not delta
        assert "http://b.com/" in after.removed

    def test_revoke_invalidates_cached_batches_per_shard(self):
        """revoke() must drop every shard's cached batches: the revoked
        client's entries leave the snapshot, and shards it never touched
        keep serving their (still valid, rebuilt-or-cached) batches."""
        server = ServerDB(entry_ttl=None)
        bad = server.register(now=0.0)
        good = server.register(now=0.0)
        server.post_update(
            bad, self.make_reports(["http://solo.com/", "http://shared.com/"]),
            now=1.0,
        )
        server.post_update(good, self.make_reports(["http://shared.com/"]), now=1.0)
        server.post_update(
            good, self.make_reports(["http://other.com/"], asn=38193), now=1.0
        )
        stale = server.sync_batch_for_as(self.ASN, now=2.0)
        stale_other = server.sync_batch_for_as(38193, now=2.0)
        assert set(stale.urls) == {"http://solo.com/", "http://shared.com/"}

        server.revoke(bad)
        fresh = server.sync_batch_for_as(self.ASN, now=3.0)
        assert fresh is not stale  # rebuilt, not served from cache
        assert set(fresh.urls) == {"http://shared.com/"}
        # Delta pulls against the pre-revocation version carry the removal.
        delta = server.sync_batch_for_as(
            self.ASN, now=3.5, since_version=stale.version
        )
        assert "http://solo.com/" in delta.removed
        # The untouched shard was invalidated too (revocation is global),
        # but rebuilding it yields the same rows.
        fresh_other = server.sync_batch_for_as(38193, now=4.0)
        assert list(fresh_other.urls) == list(stale_other.urls)
        # ... and the rebuilt batches are themselves cached again.
        assert server.sync_batch_for_as(self.ASN, now=5.0) is fresh

    def test_revoke_invalidates_weighted_batch_variants(self):
        """Plane-weighted cache keys are invalidated by revoke() just
        like unweighted ones — a revoked reporter's vote mass must not
        linger in any cached variant."""
        server = ServerDB(entry_ttl=None)
        bad = server.register(now=0.0, plane="encore")
        good = server.register(now=0.0)
        items = [
            ReportItem(url="http://solo.com/", asn=self.ASN,
                       stages=(BlockType.BLOCK_PAGE,), measured_at=1.0,
                       plane="encore"),
        ]
        server.post_update(bad, items, now=1.0)
        server.post_update(good, self.make_reports(["http://shared.com/"]), now=1.0)
        weights = {"csaw": 1.0, "encore": 0.5}
        # min_reporters=0: encore's down-weighted reporter mass (0.5)
        # must clear the threshold for solo.com to appear at all.
        stale = server.sync_batch_for_as(
            self.ASN, now=2.0, min_reporters=0, min_votes=0.4,
            plane_weights=weights,
        )
        assert set(stale.urls) == {"http://solo.com/", "http://shared.com/"}
        assert server.sync_batch_for_as(
            self.ASN, now=2.5, min_reporters=0, min_votes=0.4,
            plane_weights=weights,
        ) is stale  # weighted variant is cached
        server.revoke(bad)
        fresh = server.sync_batch_for_as(
            self.ASN, now=3.0, min_reporters=0, min_votes=0.4,
            plane_weights=weights,
        )
        assert fresh is not stale
        assert set(fresh.urls) == {"http://shared.com/"}

    def test_distinct_since_versions_cache_separately(self):
        server = ServerDB(entry_ttl=None)
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        v1 = server.version_for_as(self.ASN)
        other = server.register(now=1.5)
        server.post_update(other, self.make_reports(["http://b.com/"]), now=2.0)
        full = server.sync_batch_for_as(self.ASN, now=3.0)
        delta = server.sync_batch_for_as(self.ASN, now=3.0, since_version=v1)
        assert full.full and not delta.full
        assert [u for u in delta.urls] == ["http://b.com/"]
        assert server.sync_batch_for_as(self.ASN, now=4.0) is full
        assert server.sync_batch_for_as(
            self.ASN, now=4.0, since_version=v1
        ) is delta
