"""Tests for the voting ledger and the global database server."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.globaldb import RegistrationError, ReportItem, ServerDB
from repro.core.records import BlockType
from repro.core.voting import VotingLedger


class TestVotingLedger:
    def test_single_client_single_url_full_vote(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        stats = ledger.stats("http://a.com/", 1)
        assert stats.votes == pytest.approx(1.0)
        assert stats.reporters == 1

    def test_vote_spread_over_d_urls(self):
        ledger = VotingLedger()
        keys = [(f"http://u{i}.com/", 1) for i in range(4)]
        ledger.set_client_reports("c1", keys)
        for url, asn in keys:
            assert ledger.stats(url, asn).votes == pytest.approx(0.25)

    def test_spammer_dilutes_own_votes(self):
        """A malicious client reporting many URLs gives each ~nothing,
        while two honest clients beat it on the contested URL."""
        ledger = VotingLedger()
        spam = [(f"http://spam{i}.com/", 1) for i in range(100)]
        ledger.set_client_reports("evil", spam + [("http://real.com/", 1)])
        ledger.set_client_reports("honest-1", [("http://real.com/", 1)])
        ledger.set_client_reports("honest-2", [("http://real.com/", 1)])
        real = ledger.stats("http://real.com/", 1)
        fake = ledger.stats("http://spam0.com/", 1)
        assert real.votes > 2.0
        assert fake.votes < 0.02
        assert fake.reporters == 1

    def test_adding_reports_renormalizes(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        assert ledger.stats("http://a.com/", 1).votes == pytest.approx(1.0)
        ledger.add_client_reports("c1", [("http://b.com/", 1)])
        assert ledger.stats("http://a.com/", 1).votes == pytest.approx(0.5)
        assert ledger.stats("http://b.com/", 1).votes == pytest.approx(0.5)

    def test_per_as_entries_are_distinct(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        assert ledger.stats("http://a.com/", 2).reporters == 0

    def test_revoke_removes_influence(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        ledger.revoke_client("c1")
        assert ledger.stats("http://a.com/", 1).reporters == 0
        assert ledger.client_count() == 0

    @given(
        st.dictionaries(
            st.sampled_from([f"c{i}" for i in range(6)]),
            st.lists(
                st.sampled_from([(f"http://u{i}.com/", 1) for i in range(5)]),
                max_size=5,
                unique=True,
            ),
            max_size=6,
        )
    )
    def test_total_vote_mass_bounded_by_client_count(self, assignments):
        ledger = VotingLedger()
        for client, keys in assignments.items():
            ledger.set_client_reports(client, keys)
        total = sum(
            ledger.stats(f"http://u{i}.com/", 1).votes for i in range(5)
        )
        active = sum(1 for keys in assignments.values() if keys)
        assert total == pytest.approx(active)


class TestServerDB:
    def make_reports(self, urls, asn=17557):
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=1.0,
            )
            for url in urls
        ]

    def test_registration_issues_unique_uuids(self):
        server = ServerDB()
        uuids = {server.register(now=float(i)) for i in range(50)}
        assert len(uuids) == 50
        assert server.client_count == 50

    def test_failed_captcha_rejected(self):
        server = ServerDB()
        with pytest.raises(RegistrationError):
            server.register(now=0.0, captcha_passed=False)
        assert server.rejected_registrations == 1

    def test_unregistered_client_cannot_post(self):
        server = ServerDB()
        with pytest.raises(RegistrationError):
            server.post_update("nope", self.make_reports(["http://a.com/"]), 1.0)

    def test_post_and_download_roundtrip(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        accepted = server.post_update(
            uuid, self.make_reports(["http://a.com/", "http://b.com/"]), now=5.0
        )
        assert accepted == 2
        entries = server.blocked_for_as(17557, now=6.0)
        assert {e.url for e in entries} == {"http://a.com/", "http://b.com/"}
        assert all(e.posted_at == 5.0 for e in entries)
        assert server.blocked_for_as(999, now=6.0) == []

    def test_repeat_posts_merge_stages(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        server.post_update(
            uuid,
            [
                ReportItem(
                    url="http://a.com/",
                    asn=17557,
                    stages=(BlockType.DNS_SERVFAIL,),
                    measured_at=2.0,
                )
            ],
            now=2.0,
        )
        entry = server.entry("http://a.com/", 17557)
        assert BlockType.BLOCK_PAGE in entry.stages
        assert BlockType.DNS_SERVFAIL in entry.stages
        assert server.update_count == 2

    def test_confidence_filter_blocks_lone_spammer(self):
        server = ServerDB()
        evil = server.register(now=0.0)
        honest = [server.register(now=float(i + 1)) for i in range(3)]
        spam_urls = [f"http://spam{i}.com/" for i in range(50)]
        server.post_update(evil, self.make_reports(spam_urls), now=2.0)
        for uuid in honest:
            server.post_update(uuid, self.make_reports(["http://real.com/"]), now=3.0)

        trusting = server.blocked_for_as(17557, now=4.0)
        assert len(trusting) == 51  # no filter: spam included
        careful = server.blocked_for_as(17557, now=4.0, min_reporters=2)
        assert [e.url for e in careful] == ["http://real.com/"]
        by_votes = server.blocked_for_as(17557, now=4.0, min_votes=0.5)
        assert [e.url for e in by_votes] == ["http://real.com/"]

    def test_entry_ttl_expires_stale_reports(self):
        server = ServerDB(entry_ttl=100.0)
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        assert server.blocked_for_as(17557, now=50.0)
        assert server.blocked_for_as(17557, now=200.0) == []

    def test_revoke_drops_client_and_votes(self):
        server = ServerDB()
        uuid = server.register(now=0.0)
        server.post_update(uuid, self.make_reports(["http://a.com/"]), now=1.0)
        server.revoke(uuid)
        assert not server.is_registered(uuid)
        assert server.stats_for("http://a.com/", 17557).reporters == 0
