"""Tests for the §2.2/§8 extensions: Hold-On, Tor bridges, server-side
geo filtering, fingerprinting, mobility, and the reputation system."""

import pytest

from repro.censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
)
from repro.censor.fingerprint import FingerprintAnalyzer
from repro.censor.policy import Matcher, Rule
from repro.circumvent import HoldOnTransport, PublicDnsTransport, TorTransport
from repro.core import (
    BlockStatus,
    BlockType,
    CSawClient,
    CSawConfig,
    ReportItem,
    ReputationAnalyzer,
    ServerDB,
)
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=888, with_proxy_fleet=False)


def make_ctx(scenario, isp, name):
    world = scenario.world
    client, access = world.add_client(name, [isp])
    return world.new_ctx(client, access, stream=f"ext/{name}")


class TestDnsInjectionAndHoldOn:
    def add_injection_rule(self, scenario, hostname):
        policy = scenario.world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={hostname}),
                dns=DnsVerdict(
                    DnsAction.REDIRECT,
                    redirect_ip="10.99.99.99",
                    scope="path",
                    injection_race=True,
                ),
            )
        )

    def test_injection_race_validation(self):
        with pytest.raises(ValueError):
            DnsVerdict(DnsAction.NXDOMAIN, injection_race=True)
        with pytest.raises(ValueError):
            DnsVerdict(
                DnsAction.REDIRECT, redirect_ip="10.0.0.1",
                scope="resolver", injection_race=True,
            )

    def test_public_dns_loses_the_race(self, scenario):
        world = scenario.world
        world.web.add_site("injected.example.com", location="us-east")
        world.web.add_page("http://injected.example.com/", size_bytes=20_000)
        self.add_injection_rule(scenario, "injected.example.com")
        ctx = make_ctx(scenario, scenario.isp_a, "inj1")
        result = world.run_process(
            PublicDnsTransport().fetch(
                world, ctx, "http://injected.example.com/"
            )
        )
        # Forged answer wins the race -> connection into dead space.
        assert result.failed
        assert result.failure_stage == "tcp"

    def test_hold_on_survives_the_race(self, scenario):
        world = scenario.world
        world.web.add_site("injected2.example.com", location="us-east")
        world.web.add_page("http://injected2.example.com/", size_bytes=20_000)
        self.add_injection_rule(scenario, "injected2.example.com")
        ctx = make_ctx(scenario, scenario.isp_a, "inj2")
        result = world.run_process(
            HoldOnTransport().fetch(world, ctx, "http://injected2.example.com/")
        )
        assert result.ok
        assert result.response.size_bytes == 20_000

    def test_hold_on_costs_extra_on_clean_paths(self, scenario):
        world = scenario.world
        url = scenario.urls["small-unblocked"]
        ctx = make_ctx(scenario, scenario.isp_a, "inj3")
        plain = world.run_process(PublicDnsTransport().fetch(world, ctx, url))
        held = world.run_process(HoldOnTransport().fetch(world, ctx, url))
        assert plain.ok and held.ok
        # The standing margin shows up (statistically) in the latency.
        assert held.elapsed + 0.5 > plain.elapsed  # sanity: same ballpark

    def test_csaw_escalates_public_dns_to_hold_on(self, scenario):
        """C-Saw tries public DNS first, learns it fails against the
        injection, and converges on Hold-On."""
        world = scenario.world
        world.web.add_site("injected3.example.com", location="us-east")
        world.web.add_page("http://injected3.example.com/", size_bytes=20_000)
        self.add_injection_rule(scenario, "injected3.example.com")
        client = CSawClient(
            world,
            "inj4",
            [scenario.isp_a],
            transports=scenario.make_transports(
                "inj4", include=["public-dns", "hold-on", "tor"]
            ),
        )
        paths = []

        def flow():
            for _ in range(4):
                response = yield from client.request(
                    "http://injected3.example.com/"
                )
                yield response.measurement_process
                paths.append(response.path)

        world.run_process(flow())
        assert paths[-1] == "hold-on"
        assert all(p == "hold-on" for p in paths[-2:])


class TestTorBridges:
    def test_bridges_not_in_public_consensus(self, scenario):
        bridges = scenario.tor.add_bridges(3, stream="br1")
        public = set(scenario.tor.public_relay_ips())
        assert all(b.host.ip not in public for b in bridges)

    def test_bridge_circuit_uses_bridge_entry(self, scenario):
        scenario.tor.add_bridges(3, stream="br2")
        client = scenario.tor.client("bridge-user", use_bridges=True)
        circuit = client.new_circuit(0.0)
        assert circuit.entry in scenario.tor.bridges

    def test_bridge_client_without_bridges_errors(self, scenario):
        import copy

        network = scenario.tor
        saved = list(network.bridges)
        network.bridges = []
        client = network.client("no-bridges", use_bridges=True)
        with pytest.raises(ValueError):
            client.new_circuit(0.0)
        network.bridges = saved

    def test_bridges_evade_relay_ip_blacklist(self, scenario):
        world = scenario.world
        scenario.tor.add_bridges(4, stream="br3")
        # The censor scrapes the consensus and blocks every public relay.
        policy = world.network.ases[scenario.isp_b.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(ips=set(scenario.tor.public_relay_ips())),
                ip=IpVerdict(IpAction.DROP),
                label="tor-blacklist",
            )
        )
        url = scenario.urls["youtube"]
        ctx = make_ctx(scenario, scenario.isp_b, "br-user")
        public_tor = TorTransport(scenario.tor.client("public-user"))
        blocked = world.run_process(public_tor.fetch(world, ctx, url))
        assert blocked.failed
        assert blocked.failure_stage == "tcp"
        bridge_tor = TorTransport(
            scenario.tor.client("bridge-user-2", use_bridges=True)
        )
        works = world.run_process(bridge_tor.fetch(world, ctx, url))
        assert works.ok
        policy.remove_rules("tor-blacklist")


class TestServerSideFiltering:
    def add_geo_site(self, scenario, hostname="geo.example.com"):
        world = scenario.world
        world.web.add_site(
            hostname, location="us-east", geo_blocked={"pakistan"}
        )
        world.web.add_page(f"http://{hostname}/", size_bytes=150_000)
        return f"http://{hostname}/"

    def test_direct_fetch_gets_451(self, scenario):
        url = self.add_geo_site(scenario, "geo1.example.com")
        ctx = make_ctx(scenario, scenario.isp_clean, "geo1")
        from repro.circumvent import DirectTransport

        result = scenario.world.run_process(
            DirectTransport().fetch(scenario.world, ctx, url)
        )
        assert result.failed
        assert result.response.status == 451

    def test_detection_classifies_server_filtering(self, scenario):
        from repro.core.detection import measure_direct_path

        url = self.add_geo_site(scenario, "geo2.example.com")
        ctx = make_ctx(scenario, scenario.isp_clean, "geo2")
        outcome = scenario.world.run_process(
            measure_direct_path(scenario.world, ctx, url)
        )
        assert outcome.status is BlockStatus.BLOCKED
        assert outcome.stages == [BlockType.SERVER_FILTERING]
        assert not outcome.suspected_blockpage

    def test_relay_outside_region_gets_content(self, scenario):
        url = self.add_geo_site(scenario, "geo3.example.com")
        ctx = make_ctx(scenario, scenario.isp_clean, "geo3")
        tor = scenario.tor_transport("geo3-tor")
        result = scenario.world.run_process(
            tor.fetch(scenario.world, ctx, url)
        )
        assert result.ok
        assert result.response.status == 200

    def test_csaw_circumvents_server_filtering(self, scenario):
        url = self.add_geo_site(scenario, "geo4.example.com")
        client = CSawClient(
            scenario.world,
            "geo4-client",
            [scenario.isp_clean],
            transports=scenario.make_transports("geo4-client"),
        )

        def flow():
            first = yield from client.request(url)
            yield first.measurement_process
            second = yield from client.request(url)
            yield second.measurement_process
            return first, second

        first, second = scenario.world.run_process(flow())
        assert first.status is BlockStatus.BLOCKED
        assert BlockType.SERVER_FILTERING in first.stages
        assert second.ok
        # No local fix covers server-side filtering: a relay serves it.
        assert second.path in ("tor", "lantern")


class TestFingerprinting:
    def test_flow_observation_gated(self, scenario):
        box = scenario.world.network.ases[scenario.isp_a.asn].censor
        assert box.observe_traffic is False
        box.observe_flow(0.0, "1.2.3.4", "5.6.7.8")
        assert box.flows == []
        box.observe_traffic = True
        box.observe_flow(1.0, "1.2.3.4", "5.6.7.8")
        assert len(box.flows) == 1
        box.observe_traffic = False
        box.flows.clear()

    def test_redundant_user_more_suspicious_than_plain(self, scenario):
        world = scenario.world
        box = world.network.ases[scenario.isp_a.asn].censor
        box.observe_traffic = True
        box.flows.clear()
        relay_ips = set(scenario.tor.public_relay_ips())

        # A C-Saw user with aggressive redundancy on fresh URLs.
        csaw = CSawClient(
            world, "fp-csaw", [scenario.isp_a],
            transports=scenario.make_transports("fp-csaw", include=["tor"]),
            config=CSawConfig(aggregation_enabled=False),
        )
        plain_client, plain_access = world.add_client(
            "fp-plain", [scenario.isp_a]
        )
        from repro.circumvent import DirectTransport

        direct = DirectTransport()

        def drive():
            for index in range(10):
                response = yield from csaw.request(
                    f"http://{'www.smallnews.example.com'}/a{index}"
                )
                yield response.measurement_process
                ctx = world.new_ctx(plain_client, plain_access, stream="fp")
                yield from direct.fetch(
                    world, ctx, scenario.urls["small-unblocked"]
                )

        world.run_process(drive())
        analyzer = FingerprintAnalyzer(box, relay_ips)
        scores = analyzer.score_clients()
        box.observe_traffic = False
        box.flows.clear()
        assert scores[csaw.host.ip].suspicion > scores[plain_client.ip].suspicion
        assert scores[plain_client.ip].relay_flows == 0

    def test_evaluate_precision_recall(self, scenario):
        world = scenario.world
        box = world.network.ases[scenario.isp_a.asn].censor
        box.observe_traffic = True
        box.flows.clear()
        relay_ips = set(scenario.tor.public_relay_ips())
        csaw = CSawClient(
            world, "fp2-csaw", [scenario.isp_a],
            transports=scenario.make_transports("fp2-csaw", include=["tor"]),
            config=CSawConfig(aggregation_enabled=False),
        )

        def drive():
            for index in range(8):
                response = yield from csaw.request(
                    f"http://www.smallnews.example.com/b{index}"
                )
                yield response.measurement_process

        world.run_process(drive())
        analyzer = FingerprintAnalyzer(box, relay_ips)
        result = analyzer.evaluate([csaw.host.ip], threshold=0.2)
        box.observe_traffic = False
        box.flows.clear()
        assert result["recall"] == 1.0


class TestMobility:
    def test_migrate_switches_as_and_resyncs(self, scenario):
        world = scenario.world
        server = ServerDB()
        # Someone on ISP-B already reported YouTube's blocking there.
        seeder = CSawClient(
            world, "mob-seeder", [scenario.isp_b],
            transports=scenario.make_transports("mob-seeder"),
            server_db=server,
        )
        traveller = CSawClient(
            world, "mob-traveller", [scenario.isp_a],
            transports=scenario.make_transports("mob-traveller"),
            server_db=server,
        )

        def flow():
            yield from seeder.install()
            response = yield from seeder.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from seeder.reporting.post_reports(seeder.new_ctx())

            yield from traveller.install()
            # Measure something on ISP-A so the local DB is non-empty.
            r = yield from traveller.request(scenario.urls["small-unblocked"])
            yield r.measurement_process
            assert traveller.local_db.record_count > 0
            # The user moves onto ISP-B.
            count = yield from traveller.migrate([scenario.isp_b])
            return count

        count = world.run_process(flow())
        assert traveller.asn == scenario.isp_b.asn
        assert traveller.local_db.record_count == 0  # old AS knowledge gone
        assert count >= 1  # pulled ISP-B's blocked list
        assert traveller.global_view.lookup(scenario.urls["youtube"]) is not None

    def test_migrate_to_multihomed_enables_manager(self, scenario):
        client = CSawClient(
            scenario.world, "mob-2", [scenario.isp_a],
            transports=scenario.make_transports("mob-2"),
        )
        assert client.multihoming is None

        def flow():
            yield from client.migrate([scenario.isp_a, scenario.isp_b])

        scenario.world.run_process(flow())
        assert client.multihoming is not None
        assert client.measurement.multihoming is client.multihoming

    def test_migrate_requires_providers(self, scenario):
        client = CSawClient(
            scenario.world, "mob-3", [scenario.isp_a],
            transports=scenario.make_transports("mob-3"),
        )

        def flow():
            with pytest.raises(ValueError):
                yield from client.migrate([])

        scenario.world.run_process(flow())


class TestReputation:
    def seed_server(self):
        server = ServerDB()
        honest = [server.register(now=float(i)) for i in range(6)]
        real = [f"http://blocked-{i}.example/" for i in range(12)]
        import random

        rng = random.Random(4)
        for uuid in honest:
            mine = rng.sample(real, 7)  # overlapping subsets
            server.post_update(
                uuid,
                [ReportItem(url=u, asn=1, stages=(BlockType.BLOCK_PAGE,),
                            measured_at=1.0) for u in mine],
                now=2.0,
            )
        return server, honest, real

    def test_lone_fabricator_flagged(self):
        server, honest, _real = self.seed_server()
        evil = server.register(now=50.0)
        fakes = [f"http://fake-{i}.example/" for i in range(80)]
        server.post_update(
            evil,
            [ReportItem(url=u, asn=1, stages=(BlockType.BLOCK_PAGE,),
                        measured_at=1.0) for u in fakes],
            now=51.0,
        )
        analyzer = ReputationAnalyzer(server)
        suspects = analyzer.flag_suspects()
        assert suspects == {evil}

    def test_sybil_clique_flagged_despite_mutual_corroboration(self):
        server, honest, _real = self.seed_server()
        clique = [server.register(now=60.0 + i) for i in range(3)]
        fakes = [f"http://clique-{i}.example/" for i in range(60)]
        for uuid in clique:
            server.post_update(
                uuid,
                [ReportItem(url=u, asn=1, stages=(BlockType.BLOCK_PAGE,),
                            measured_at=1.0) for u in fakes],
                now=61.0,
            )
        analyzer = ReputationAnalyzer(server)
        suspects = analyzer.flag_suspects()
        assert set(clique) <= suspects
        assert not (set(honest) & suspects)

    def test_enforce_revokes_and_cleans_votes(self):
        server, _honest, _real = self.seed_server()
        evil = server.register(now=50.0)
        fakes = [f"http://fake-{i}.example/" for i in range(80)]
        server.post_update(
            evil,
            [ReportItem(url=u, asn=1, stages=(BlockType.BLOCK_PAGE,),
                        measured_at=1.0) for u in fakes],
            now=51.0,
        )
        revoked = ReputationAnalyzer(server).enforce()
        assert revoked == {evil}
        assert not server.is_registered(evil)
        assert server.stats_for(fakes[0], 1).reporters == 0

    def test_honest_users_never_flagged(self):
        server, honest, _real = self.seed_server()
        suspects = ReputationAnalyzer(server).flag_suspects()
        assert not suspects
