"""Failure-injection tests: C-Saw must degrade gracefully, not crash.

The threat model (§3) says the adversary can block, modify, or reject
any connection at any time — including connections to C-Saw's own
infrastructure.  These tests break things on purpose: the collection
service, every relay, every transport at once, and the record TTLs.
"""

import pytest

from repro.censor.actions import HttpAction, HttpVerdict, IpAction, IpVerdict
from repro.censor.policy import Matcher, Rule
from repro.core import BlockStatus, CSawClient, CSawConfig, ServerDB
from repro.core.reporting import COLLECTOR_HOSTNAME, ensure_collector
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=1234, with_proxy_fleet=False)


def joined_request(world, client, url):
    def proc():
        response = yield from client.request(url)
        yield response.measurement_process
        return response

    return world.run_process(proc())


class TestCollectorBlocked:
    def test_reports_fail_but_browsing_continues(self, scenario):
        """The censor blocks the global DB's collection endpoint (§5):
        uploads fail silently and are retried later; the client keeps
        measuring and circumventing on local knowledge alone."""
        world = scenario.world
        server = ServerDB()
        client = CSawClient(
            world, "fi-1", [scenario.isp_a],
            transports=scenario.make_transports("fi-1"),
            server_db=server,
        )

        def flow():
            yield from client.install()
            # Now the censor blackholes the collector.
            collector_ip = world.network.hosts_by_name[COLLECTOR_HOSTNAME].ip
            policy = world.network.ases[scenario.isp_a.asn].censor.policy
            policy.add_rule(
                Rule(matcher=Matcher(ips={collector_ip}, domains={COLLECTOR_HOSTNAME}),
                     ip=IpVerdict(IpAction.DROP), label="block-collector")
            )
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            posted = yield from client.reporting.post_reports(client.new_ctx())
            # Circumvention still works; the report upload failed.
            assert response.ok
            assert posted == 0
            assert client.local_db.pending_reports()  # still queued
            # Censor relents; the retry succeeds.
            policy.remove_rules("block-collector")
            posted_later = yield from client.reporting.post_reports(
                client.new_ctx()
            )
            assert posted_later == 1

        world.run_process(flow())

    def test_reports_over_tor_survive_collector_ip_block(self, scenario):
        """Reports carried over Tor are unaffected by an IP block on the
        collector as seen from the client's ISP (the exit fetches it)."""
        world = scenario.world
        server = ServerDB()
        client = CSawClient(
            world, "fi-2", [scenario.isp_a],
            transports=scenario.make_transports("fi-2"),
            server_db=server,
            report_transport=scenario.tor_transport("fi-2-report"),
        )

        def flow():
            yield from client.install()
            collector_ip = world.network.hosts_by_name[COLLECTOR_HOSTNAME].ip
            policy = world.network.ases[scenario.isp_a.asn].censor.policy
            policy.add_rule(
                Rule(matcher=Matcher(ips={collector_ip}),
                     ip=IpVerdict(IpAction.DROP), label="block-collector-2")
            )
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            posted = yield from client.reporting.post_reports(client.new_ctx())
            assert posted == 1  # Tor carried it out
            policy.remove_rules("block-collector-2")

        world.run_process(flow())


class TestAllRelaysBlocked:
    def test_total_relay_blackout_serves_failure_not_crash(self, scenario):
        """Censor blocks every Tor relay and every Lantern proxy for a
        client with no viable local fix: the request completes with a
        failed result rather than hanging or raising."""
        world = scenario.world
        relay_ips = set(scenario.tor.public_relay_ips()) | {
            p.ip for p in scenario.lantern.proxies
        }
        policy = world.network.ases[scenario.isp_b.asn].censor.policy
        policy.add_rule(
            Rule(matcher=Matcher(ips=relay_ips), ip=IpVerdict(IpAction.DROP),
                 label="relay-blackout")
        )
        client = CSawClient(
            world, "fi-3", [scenario.isp_b],
            transports=scenario.make_transports(
                "fi-3", include=["tor", "lantern"]
            ),
        )
        response = joined_request(world, client, scenario.urls["youtube"])
        assert not response.ok
        assert response.status is BlockStatus.BLOCKED
        policy.remove_rules("relay-blackout")

    def test_lantern_rotation_recovers_from_single_proxy_block(self, scenario):
        world = scenario.world
        lantern = scenario.lantern_transport("fi-4")
        victim = lantern._proxy()
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(matcher=Matcher(ips={victim.ip}), ip=IpVerdict(IpAction.RST),
                 label="one-proxy")
        )
        client_host, access = world.add_client("fi-4c", [scenario.isp_a])

        def flow():
            ctx = world.new_ctx(client_host, access, stream="fi-4")
            first = yield from lantern.fetch(world, ctx, scenario.urls["youtube"])
            assert first.failed  # hit the blocked proxy, rotated away
            second = yield from lantern.fetch(world, ctx, scenario.urls["youtube"])
            assert second.ok

        world.run_process(flow())
        policy.remove_rules("one-proxy")


class TestChurnUnderShortTtl:
    def test_rapid_policy_flapping_converges(self, scenario):
        """Censor adds and removes a rule repeatedly; with a short TTL the
        client tracks the current truth without wedging."""
        world = scenario.world
        url = "http://flappy.example.com/"
        world.web.add_site("flappy.example.com", location="us-east")
        world.web.add_page(url, size_bytes=40_000)
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        rule = Rule(
            matcher=Matcher(domains={"flappy.example.com"}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT,
                blockpage_ip=scenario.blockpage_a.ip,
            ),
            label="flappy",
        )
        client = CSawClient(
            world, "fi-5", [scenario.isp_a],
            transports=scenario.make_transports("fi-5"),
            config=CSawConfig(record_ttl=30.0, probe_probability=1.0),
        )

        def flow():
            statuses = []
            for round_index in range(6):
                if round_index % 2 == 1:
                    policy.add_rule(rule)
                else:
                    policy.remove_rules("flappy")
                yield world.env.timeout(60.0)  # let the record expire
                response = yield from client.request(url)
                yield response.measurement_process
                statuses.append(response.status)
            return statuses

        statuses = world.run_process(flow())
        expected = [
            BlockStatus.NOT_BLOCKED, BlockStatus.BLOCKED,
            BlockStatus.NOT_BLOCKED, BlockStatus.BLOCKED,
            BlockStatus.NOT_BLOCKED, BlockStatus.BLOCKED,
        ]
        assert statuses == expected


class TestDegenerateConfigurations:
    def test_client_with_no_transports_still_serves_direct(self, scenario):
        client = CSawClient(
            scenario.world, "fi-6", [scenario.isp_a], transports=[]
        )
        ok = joined_request(
            scenario.world, client, scenario.urls["small-unblocked"]
        )
        assert ok.ok and ok.path == "direct"
        blocked = joined_request(scenario.world, client, scenario.urls["youtube"])
        # Nothing to circumvent with: the block page outcome is surfaced.
        assert blocked.status is BlockStatus.BLOCKED

    def test_world_without_public_resolver_still_detects(self):
        scenario = pakistan_case_study(seed=4321, with_proxy_fleet=False)
        world = scenario.world
        world.public_resolver = None  # no GDNS anywhere
        client = CSawClient(
            world, "fi-7", [scenario.isp_a],
            transports=scenario.make_transports("fi-7", include=["tor"]),
        )
        response = joined_request(
            world, client, scenario.urls["table5/dns-servfail"]
        )
        assert response.status is BlockStatus.BLOCKED
