"""Tests for client-side URL validation/dissent (§5) and the uProxy-style
friend relay (§2.2)."""

import pytest

from repro.circumvent import FriendProxyTransport
from repro.core import BlockStatus, BlockType, CSawClient, ReportItem, ServerDB
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=606, with_proxy_fleet=False)


class TestDissent:
    def test_dissent_removes_own_vouch_only(self, scenario):
        server = ServerDB(entry_ttl=None)
        a = server.register(now=0.0)
        b = server.register(now=1.0)
        item = ReportItem(
            url="http://x.example/", asn=1,
            stages=(BlockType.BLOCK_PAGE,), measured_at=1.0,
        )
        server.post_update(a, [item], now=2.0)
        server.post_update(b, [item], now=2.0)
        dropped = server.post_dissent(a, "http://x.example/", 1, now=3.0)
        assert not dropped  # b still vouches
        stats = server.stats_for("http://x.example/", 1)
        assert stats.reporters == 1
        dropped = server.post_dissent(b, "http://x.example/", 1, now=4.0)
        assert dropped
        assert server.entry("http://x.example/", 1) is None

    def test_dissent_from_non_reporter_is_harmless(self, scenario):
        server = ServerDB(entry_ttl=None)
        reporter = server.register(now=0.0)
        bystander = server.register(now=1.0)
        item = ReportItem(
            url="http://x.example/", asn=1,
            stages=(BlockType.BLOCK_PAGE,), measured_at=1.0,
        )
        server.post_update(reporter, [item], now=2.0)
        dropped = server.post_dissent(bystander, "http://x.example/", 1, 3.0)
        assert not dropped
        assert server.stats_for("http://x.example/", 1).reporters == 1

    def test_dissent_requires_registration(self, scenario):
        from repro.core import RegistrationError

        server = ServerDB()
        with pytest.raises(RegistrationError):
            server.post_dissent("ghost", "http://x.example/", 1, 0.0)

    def test_client_validate_corrects_false_report(self, scenario):
        """A false global entry for an actually-unblocked URL: the user
        validates, the local record flips, and their vouch is withdrawn."""
        world = scenario.world
        server = ServerDB(entry_ttl=None)
        client = CSawClient(
            world, "val-1", [scenario.isp_a],
            transports=scenario.make_transports("val-1"),
            server_db=server,
        )
        url = scenario.urls["small-unblocked"]

        def flow():
            yield from client.install()
            # The client itself once (wrongly) reported this URL.
            server.post_update(
                client.reporting.uuid,
                [ReportItem(url=url, asn=client.asn,
                            stages=(BlockType.BLOCK_PAGE,), measured_at=0.0)],
                now=world.env.now,
            )
            outcome = yield from client.validate(url)
            return outcome

        outcome = world.run_process(flow())
        assert outcome.status is BlockStatus.NOT_BLOCKED
        assert client.local_db.lookup(url)[0] is BlockStatus.NOT_BLOCKED
        assert server.entry(url, client.asn) is None  # vouch withdrawn

    def test_client_validate_confirms_real_blocking(self, scenario):
        world = scenario.world
        client = CSawClient(
            world, "val-2", [scenario.isp_a],
            transports=scenario.make_transports("val-2"),
        )

        def flow():
            outcome = yield from client.validate(scenario.urls["youtube"])
            return outcome

        outcome = world.run_process(flow())
        assert outcome.blocked
        assert client.local_db.lookup(scenario.urls["youtube"])[0] is (
            BlockStatus.BLOCKED
        )


class TestFriendProxy:
    def make_friend(self, scenario, name="friend-laptop", bw=8e6):
        return scenario.world.network.add_host(
            name, "us-east", bandwidth_bps=bw
        )

    def test_online_friend_relays(self, scenario):
        world = scenario.world
        friend = self.make_friend(scenario)
        transport = FriendProxyTransport(friend, online_probability=1.0)
        client, access = world.add_client("up-1", [scenario.isp_b])
        ctx = world.new_ctx(client, access, stream="up-1")
        result = world.run_process(
            transport.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert result.ok
        assert result.transport == "uproxy"

    def test_offline_friend_times_out(self, scenario):
        world = scenario.world
        friend = self.make_friend(scenario, "friend-off")
        transport = FriendProxyTransport(friend, online_probability=0.0)
        client, access = world.add_client("up-2", [scenario.isp_b])
        ctx = world.new_ctx(client, access, stream="up-2")
        t0 = world.env.now
        result = world.run_process(
            transport.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert result.failed
        assert result.failure_stage == "tcp"
        assert world.env.now - t0 == pytest.approx(21.0)

    def test_presence_flaps_per_session(self, scenario):
        import random

        world = scenario.world
        friend = self.make_friend(scenario, "friend-flap")
        transport = FriendProxyTransport(
            friend, online_probability=0.5, rng=random.Random(13),
            session_length=600.0,
        )
        client, access = world.add_client("up-3", [scenario.isp_clean])
        outcomes = []

        def flow():
            for _ in range(20):
                ctx = world.new_ctx(client, access, stream="up-3")
                result = yield from transport.fetch(
                    world, ctx, scenario.urls["small-unblocked"]
                )
                outcomes.append(result.ok)
                yield world.env.timeout(700.0)  # next presence session

        world.run_process(flow())
        assert any(outcomes) and not all(outcomes)

    def test_probability_validation(self, scenario):
        friend = self.make_friend(scenario, "friend-bad")
        with pytest.raises(ValueError):
            FriendProxyTransport(friend, online_probability=1.5)
        with pytest.raises(ValueError):
            FriendProxyTransport(friend, online_probability=-0.1)

    def test_csaw_learns_to_avoid_flaky_friend(self, scenario):
        """With a flaky friend and a reliable Lantern pool, the moving
        averages steer C-Saw away from the friend over time."""
        import random

        world = scenario.world
        friend = self.make_friend(scenario, "friend-flaky", bw=3e6)
        client = CSawClient(
            world, "up-4", [scenario.isp_b],
            transports=[
                FriendProxyTransport(
                    friend, online_probability=0.4,
                    rng=random.Random(5), session_length=300.0,
                ),
                scenario.lantern_transport("up-4"),
            ],
        )
        paths = []

        def flow():
            for _ in range(14):
                response = yield from client.request(scenario.urls["youtube"])
                yield response.measurement_process
                paths.append(response.path)
                yield world.env.timeout(400.0)

        world.run_process(flow())
        # Steady state prefers the dependable relay.
        assert paths[-4:].count("lantern") >= 3
