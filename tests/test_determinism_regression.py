"""Same-seed runs must be bit-identical — including across hash seeds.

Set-iteration order bugs do NOT reproduce inside one process (a string
hashes the same all process long), so the cross-run checks here execute
the pipeline in subprocesses under *different* ``PYTHONHASHSEED`` values
and diff the canonical JSON output.  This is the executable form of the
invariant csaw-lint CSL003 enforces statically: the paper's s_{j,k}
statistics and Table-7 rows are only meaningful if two runs of the same
experiment seed agree bit-for-bit."""

import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.censor.fingerprint import FingerprintAnalyzer
from repro.core.globaldb import ReportItem, ServerDB
from repro.core.records import BlockType
from repro.core.reputation import ReputationAnalyzer

REPO = Path(__file__).resolve().parents[1]

# One canonical rendering of the crowdsourcing pipeline: a small pilot
# (sim + reporting + sync), per-AS analytics, reputation enforcement
# (revocation order mutates server change logs), and a staggered
# rollout's deterministic default stream.
_PIPELINE = r"""
import json
from repro.core.analytics import MeasurementAnalytics
from repro.core.reputation import ReputationAnalyzer
from repro.workloads.events import staggered_rollout
from repro.workloads.pilot import PilotConfig, PilotStudy

study = PilotStudy(PilotConfig(
    seed=11, n_users=6, n_sites=120, requests_per_user=10,
    duration_days=8.0, n_ases=4,
))
report = study.run()
out = {"pilot": report.rows()}

analytics = MeasurementAnalytics(study.server)
out["as_summaries"] = [
    [s.asn, s.blocked_urls, s.blocked_domains, s.reporters,
     list(map(list, s.blocking_types))]
    for s in analytics.all_as_summaries()
]
out["top_domains"] = analytics.top_blocked_domains(limit=5)

# Thresholds chosen to flag every reporter: the point is the *order* in
# which revocation mutates the ledger, not who gets flagged.
out["revoked"] = list(ReputationAnalyzer(study.server).enforce(
    min_volume=1, max_corroboration=2.0))
out["post_revoke_entries"] = sorted(
    e.url for e in study.server.all_entries())

out["rollout"] = [
    [e.time, e.asn, e.domain]
    for e in staggered_rollout(["a.example", "b.example"], [10, 11, 12],
                               start=5.0, lag=3600.0)
]

# The trace bus feeds these: per-stage PLT seconds aggregated over every
# client.  hex() keeps the comparison bit-exact.
breakdown = {}
for client in study.clients:
    for stage, seconds in client.measurement.stage_seconds.items():
        breakdown[stage] = breakdown.get(stage, 0.0) + seconds
out["plt_breakdown"] = {k: v.hex() for k, v in breakdown.items()}
print(json.dumps(out, sort_keys=True))
"""


def _run_pipeline(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", _PIPELINE],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        check=True,
    )
    return result.stdout


class TestCrossHashSeedDeterminism:
    @pytest.fixture(scope="class")
    def outputs(self):
        return {seed: _run_pipeline(seed) for seed in ("0", "1", "31337")}

    def test_pipeline_identical_across_hash_seeds(self, outputs):
        baseline = outputs["0"]
        assert json.loads(baseline)["pilot"], "pipeline produced no report"
        for seed, output in outputs.items():
            assert output == baseline, (
                f"PYTHONHASHSEED={seed} diverged from PYTHONHASHSEED=0: "
                "set/hash order is leaking into reports"
            )

    def test_repeat_run_identical_under_same_hash_seed(self, outputs):
        assert _run_pipeline("0") == outputs["0"]

    def test_revocation_actually_exercised(self, outputs):
        payload = json.loads(outputs["0"])
        assert payload["revoked"], "enforce() flagged nobody; test is vacuous"


class TestSessionRefactorGolden:
    """The MeasurementSession refactor must not move a single event.

    ``tests/data/session_refactor_golden.json`` was captured from the
    pre-refactor request path (commit c0895d8): same seeds, same
    requests, byte-for-byte the same statuses, paths, PLTs (hex floats)
    and pilot aggregates.  If this fails, the session layer changed the
    engine's event-creation or RNG-draw order — see the regeneration
    notes in ``tests/_session_golden.py``."""

    def test_bit_identical_to_pre_refactor_snapshot(self):
        from tests._session_golden import capture

        golden = json.loads(
            (REPO / "tests" / "data" / "session_refactor_golden.json")
            .read_text()
        )
        assert capture() == golden


class TestOrderedAccumulators:
    """In-process checks that the fixed sites expose insertion order."""

    @staticmethod
    def _seed_server(n_clients=5):
        server = ServerDB(entry_ttl=None)
        uuids = [server.register(now=float(i)) for i in range(n_clients)]
        for i, uuid in enumerate(uuids):
            items = [
                ReportItem(
                    url=f"http://site-{j}.example/",
                    asn=1,
                    stages=(BlockType.BLOCK_PAGE,),
                    measured_at=1.0,
                )
                for j in range(i + 1)
            ]
            server.post_update(uuid, items, now=2.0 + i)
        return server, uuids

    def test_flag_suspects_preserves_ledger_order(self):
        server, uuids = self._seed_server()
        suspects = ReputationAnalyzer(server).flag_suspects(
            min_volume=1, max_corroboration=2.0
        )
        assert list(suspects) == uuids

    def test_enforce_returns_set_like_view(self):
        server, uuids = self._seed_server(n_clients=2)
        revoked = ReputationAnalyzer(server).enforce(
            min_volume=1, max_corroboration=2.0
        )
        assert revoked == set(uuids)
        assert all(not server.is_registered(u) for u in uuids)

    def test_fingerprint_classify_preserves_flow_order(self):
        ips = [f"10.0.0.{i}" for i in (7, 3, 9, 1, 5)]
        flows = [
            SimpleNamespace(src_ip=ip, dst_ip="203.0.113.1", time=float(i))
            for i, ip in enumerate(ips)
        ]
        blocks = [
            SimpleNamespace(src_ip=ip, time=float(i) - 0.5)
            for i, ip in enumerate(ips)
        ]
        middlebox = SimpleNamespace(flows=flows, log=blocks)
        analyzer = FingerprintAnalyzer(middlebox, relay_ips={"203.0.113.1"})
        labelled = analyzer.classify(threshold=0.0)
        # Insertion (flow-arrival) order, not hash order.
        assert list(labelled) == ips
        assert labelled == set(ips)
