"""Measurement planes: refactor bit-identity, plane mixes, per-plane voting.

Four layers under test (ISSUE 10):

- the golden fingerprint: the plane-backed fleet reporter path is
  bit-identical to the pre-refactor pipeline for the single-C-Saw-plane
  case, in both sweep modes (``tests/data/plane_golden.json``);
- the plane abstraction itself: profiles, the registry, reporter
  sampling, per-plane wave items;
- mixed-plane storms: provenance counters, per-plane convergence,
  grouped/spec sweep equivalence, sharding-style metric merges;
- per-plane voting: the dormant ledger is the pre-plane ledger, active
  per-plane histograms partition the aggregate, and the weighted
  criterion degenerates to today's unweighted one.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests._plane_fingerprint import all_fingerprints, load_golden
from repro.core.fleet import run_fleet_storm
from repro.core.globaldb import ReportItem, ServerDB
from repro.core.records import BlockType
from repro.core.voting import DEFAULT_PLANE, VotingLedger
from repro.planes import (
    CSawBrowserPlane,
    EncoreProbePlane,
    GeneratedProbeListPlane,
    PLANE_KINDS,
    build_plane,
)

MIX = (
    {"kind": "csaw", "fraction": 0.04},
    {"kind": "encore", "fraction": 0.06, "miss_rate": 0.25},
    {"kind": "problist", "fraction": 0.02, "coverage": 0.8},
)


def mixed_storm(sweep_mode="grouped", seed=11, server=None, **overrides):
    kwargs = dict(
        seed=seed,
        n_ases=4,
        clients_per_as=120,
        urls_per_as=6,
        pull_interval=600.0,
        wave_at=300.0,
        asn_base=52000,
        sweep_mode=sweep_mode,
        planes=[dict(spec) for spec in MIX],
        server=server,
    )
    kwargs.update(overrides)
    return run_fleet_storm(**kwargs)


class TestGoldenFingerprint:
    """The single-plane path through the plane abstraction reproduces
    the pre-refactor pipeline bit for bit (floats compared as reprs)."""

    def test_both_sweep_modes_match_pre_refactor_golden(self):
        assert all_fingerprints() == load_golden()

    def test_explicit_default_plane_matches_golden_too(self):
        """Passing the C-Saw plane explicitly (same fraction) is the
        same storm as passing no planes at all."""
        from repro.core.fleet import ClientCohort
        from repro.simnet.engine import Environment

        def run(planes):
            server = ServerDB(entry_ttl=None)
            env = Environment()
            cohort = ClientCohort(
                server,
                asns=[41000 + i for i in range(4)],
                clients_per_as=60,
                seed=7,
                reporter_fraction=0.05,
                pull_interval=600.0,
                planes=planes,
            )

            def driver():
                yield env.timeout(300.0)
                cohort.start_wave(env.now, urls_per_as=5)

            env.process(driver())
            env.process(cohort.run(env, 300.0 + 2.0 * 600.0 + cohort.tick))
            env.run()
            return cohort.finalize().summary()

        explicit = run([CSawBrowserPlane(fraction=0.05)])
        assert explicit == run(None)
        golden = load_golden()["grouped"]["summary"]
        assert {k: repr(v) if isinstance(v, float) else v
                for k, v in explicit.items()} == golden


class TestPlaneAbstraction:
    def test_profiles_encode_the_fidelity_volume_tradeoff(self):
        csaw = CSawBrowserPlane(fraction=0.01)
        encore = EncoreProbePlane(fraction=0.1)
        problist = GeneratedProbeListPlane(fraction=0.01, coverage=0.7)
        assert csaw.profile.fidelity == 1.0 and csaw.profile.registered
        assert encore.profile.fidelity < csaw.profile.fidelity
        assert not encore.profile.registered  # no CAPTCHA, no identity
        assert encore.profile.cost_per_report < csaw.profile.cost_per_report
        assert problist.profile.false_signal == pytest.approx(0.3)

    def test_registry_builds_each_kind(self):
        for kind in PLANE_KINDS:
            plane = build_plane({"kind": kind, "fraction": 0.05})
            assert plane.profile.kind == kind
            assert plane.reporter_count(100) == 5
        with pytest.raises(ValueError):
            build_plane({"kind": "satellite", "fraction": 0.1})

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            CSawBrowserPlane(fraction=0.0)
        with pytest.raises(ValueError):
            EncoreProbePlane(fraction=1.5)
        with pytest.raises(ValueError):
            EncoreProbePlane(fraction=0.1, miss_rate=1.0)
        with pytest.raises(ValueError):
            GeneratedProbeListPlane(fraction=0.1, coverage=0.0)

    def test_reporter_count_floors_at_one(self):
        assert CSawBrowserPlane(fraction=0.001).reporter_count(100) == 1

    def test_encore_registers_without_captcha_gate(self):
        server = ServerDB(entry_ttl=None)
        plane = EncoreProbePlane(fraction=0.1)
        uuids = plane.register_reporters(server, now=1.0, count=3)
        assert len(uuids) == len(set(uuids)) == 3
        assert server.clients_by_plane == {"encore": 3}

    def test_encore_reporters_drop_items_independently(self):
        plane = EncoreProbePlane(fraction=0.1, miss_rate=0.5)
        shared = plane.wave_items(
            ["http://u0.com/", "http://u1.com/", "http://u2.com/"],
            asn=1, onset=0.0, rng=random.Random(3),
        )
        assert len(shared) == 3  # the wave itself is complete ...
        rng = random.Random(5)
        kept = [len(plane.reporter_items(shared, rng)) for _ in range(50)]
        assert min(kept) < 3  # ... but individual probes miss
        assert all(item.plane == "encore" for item in shared)

    def test_problist_standing_list_is_deterministic(self):
        a = GeneratedProbeListPlane(fraction=0.1, list_size=10)
        b = GeneratedProbeListPlane(fraction=0.1, list_size=10)
        assert a.standing_list() == b.standing_list()
        assert 0 < len(a.standing_list()) <= 10

    def test_problist_coverage_filters_wave_urls(self):
        plane = GeneratedProbeListPlane(fraction=0.1, coverage=0.5)
        urls = [f"http://u{i}.com/" for i in range(40)]
        items = plane.wave_items(urls, asn=1, onset=10.0, rng=random.Random(9))
        assert 0 < len(items) < len(urls)
        assert all(item.plane == "problist" for item in items)

    def test_vote_weights_degenerate_for_single_full_fidelity_plane(self):
        only_csaw = [CSawBrowserPlane(fraction=0.01)]
        assert CSawBrowserPlane.vote_weights(only_csaw) is None
        mix = [CSawBrowserPlane(fraction=0.01), EncoreProbePlane(fraction=0.1)]
        weights = CSawBrowserPlane.vote_weights(mix)
        assert weights == {"csaw": 1.0, "encore": 0.5}


class TestMixedPlaneStorm:
    def test_provenance_counters_partition_the_storm(self):
        metrics = mixed_storm()
        assert set(metrics.reporters_by_plane) == {"csaw", "encore", "problist"}
        # 120 clients/AS x 4 ASes: round(120 * 0.04) = 5 csaw reporters/AS.
        assert metrics.reporters_by_plane["csaw"] == 4 * 5
        assert sum(metrics.reporters_by_plane.values()) == metrics.n_reporters
        assert sum(metrics.reports_by_plane.values()) == metrics.reports_absorbed
        # Encore's volume leads despite its misses; problist trails.
        assert metrics.reports_by_plane["encore"] > metrics.reports_by_plane["csaw"]
        assert metrics.reports_by_plane["problist"] > 0

    def test_per_plane_convergence_covers_every_as(self):
        metrics = mixed_storm()
        for plane, by_as in metrics.convergence_by_plane.items():
            assert len(by_as) == 4, plane
            assert all(value >= 0 for value in by_as.values()), plane
        # Every client eventually pulls every plane's target: each curve
        # accumulates to the full fleet population.
        deltas = {
            plane: sum(d for _, d in events)
            for plane, events in metrics.curve_by_plane.items()
        }
        assert deltas == {
            plane: metrics.n_clients for plane in metrics.reporters_by_plane
        }

    def test_grouped_and_spec_sweeps_agree_on_mixed_storms(self):
        grouped = mixed_storm("grouped")
        spec = mixed_storm("spec")
        assert grouped.summary() == spec.summary()
        assert grouped.reports_by_plane == spec.reports_by_plane
        assert grouped.convergence_by_plane == spec.convergence_by_plane
        assert {k: sorted(v) for k, v in grouped.curve_by_plane.items()} == {
            k: sorted(v) for k, v in spec.curve_by_plane.items()
        }

    def test_wave_stagger_rolls_the_block_across_ases(self):
        rolled = mixed_storm(wave_stagger=200.0, seed=13)
        onsets = set()
        for by_as in rolled.convergence_by_plane.values():
            assert all(value >= 0 for value in by_as.values())
        flat = mixed_storm(seed=13)
        assert flat.convergence_by_as != rolled.convergence_by_as
        onsets = {at for at, _ in rolled.curve_by_plane["csaw"]}
        assert len(onsets) > 1

    def test_server_keeps_per_plane_vote_statistics(self):
        server = ServerDB(entry_ttl=None)
        mixed_storm(server=server)
        assert set(server.clients_by_plane) == {"csaw", "encore", "problist"}
        assert set(server.reports_by_plane) == {"csaw", "encore", "problist"}
        entry = next(iter(server.all_entries()))
        by_plane = server.plane_stats_for(entry.url, entry.asn)
        assert by_plane  # provenance survives into the voting ledger
        aggregate = server.stats_for(entry.url, entry.asn)
        assert sum(s.reporters for s in by_plane.values()) == aggregate.reporters
        assert sum(s.votes for s in by_plane.values()) == pytest.approx(
            aggregate.votes
        )

    def test_plane_summary_scalars(self):
        metrics = mixed_storm()
        summary = metrics.plane_summary()
        for plane, scalars in summary.items():
            assert scalars["reporters"] == metrics.reporters_by_plane[plane]
            assert scalars["reports"] == metrics.reports_by_plane[plane]
            assert scalars["converged_ases"] == 4
            assert scalars["mean_convergence_sim_s"] > 0

    def test_metrics_merge_folds_plane_fields(self):
        left = mixed_storm(n_ases=2, asn_base=52000)
        right = mixed_storm(n_ases=2, asn_base=52002)
        whole = mixed_storm(n_ases=4, asn_base=52000)
        merged = left.merge(right)
        assert merged.reports_by_plane == whole.reports_by_plane
        assert merged.convergence_by_plane == whole.convergence_by_plane
        assert {k: sorted(v) for k, v in merged.curve_by_plane.items()} == {
            k: sorted(v) for k, v in whole.curve_by_plane.items()
        }


class TestPerPlaneVoting:
    def seeded_ledger(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1), ("http://b.com/", 1)])
        ledger.set_client_reports("c2", [("http://a.com/", 1)])
        ledger.set_client_reports("e1", [("http://a.com/", 1), ("http://c.com/", 1)])
        ledger.set_client_plane("e1", "encore")
        return ledger

    def test_dormant_ledger_answers_default_plane_queries(self):
        ledger = VotingLedger()
        ledger.set_client_reports("c1", [("http://a.com/", 1)])
        assert ledger.plane_of("c1") == DEFAULT_PLANE
        assert ledger.stats_for_plane("http://a.com/", 1, DEFAULT_PLANE) == (
            ledger.stats("http://a.com/", 1)
        )
        assert ledger.stats_for_plane("http://a.com/", 1, "encore").reporters == 0
        assert ledger.plane_stats("http://a.com/", 1) == {
            DEFAULT_PLANE: ledger.stats("http://a.com/", 1)
        }

    def test_activation_rebuilds_then_partitions(self):
        ledger = self.seeded_ledger()
        csaw = ledger.stats_for_plane("http://a.com/", 1, DEFAULT_PLANE)
        encore = ledger.stats_for_plane("http://a.com/", 1, "encore")
        assert csaw.reporters == 2 and encore.reporters == 1
        assert csaw.votes == pytest.approx(0.5 + 1.0)
        assert encore.votes == pytest.approx(0.5)
        total = ledger.stats("http://a.com/", 1)
        assert csaw.reporters + encore.reporters == total.reporters
        assert csaw.votes + encore.votes == pytest.approx(total.votes)

    def test_weighted_stats_all_ones_is_unweighted(self):
        ledger = self.seeded_ledger()
        weighted = ledger.weighted_stats(
            "http://a.com/", 1, {"csaw": 1.0, "encore": 1.0}
        )
        plain = ledger.stats("http://a.com/", 1)
        assert weighted.votes == pytest.approx(plain.votes)
        assert weighted.reporters == pytest.approx(plain.reporters)

    def test_weighted_stats_downweights_coarse_planes(self):
        ledger = self.seeded_ledger()
        weighted = ledger.weighted_stats(
            "http://a.com/", 1, {"encore": 0.5}
        )
        assert weighted.votes == pytest.approx(1.5 + 0.5 * 0.5)
        assert weighted.reporters == pytest.approx(2 + 0.5)

    def test_revoke_clears_plane_assignment(self):
        ledger = self.seeded_ledger()
        ledger.revoke_client("e1")
        assert ledger.stats_for_plane("http://a.com/", 1, "encore").reporters == 0
        assert ledger.plane_of("e1") == DEFAULT_PLANE
        assert ledger.stats("http://a.com/", 1).reporters == 2

    def test_reassignment_rebuckets_existing_reports(self):
        ledger = self.seeded_ledger()
        ledger.set_client_plane("c2", "problist")
        assert ledger.stats_for_plane("http://a.com/", 1, "problist").reporters == 1
        assert ledger.stats_for_plane("http://a.com/", 1, DEFAULT_PLANE).reporters == 1
        ledger.set_client_plane("c2", DEFAULT_PLANE)
        assert ledger.stats_for_plane("http://a.com/", 1, "problist").reporters == 0
        assert ledger.stats_for_plane("http://a.com/", 1, DEFAULT_PLANE).reporters == 2

    def test_server_weighted_filter_gates_coarse_only_entries(self):
        server = ServerDB(entry_ttl=None)
        probe = server.register(now=0.0, plane="encore", captcha_gated=False)
        human = server.register(now=0.0)
        server.post_update(
            probe,
            [ReportItem(url="http://coarse.com/", asn=9,
                        stages=(BlockType.HTTP_TIMEOUT,), measured_at=1.0,
                        plane="encore")],
            now=1.0,
        )
        server.post_update(
            human,
            [ReportItem(url="http://firm.com/", asn=9,
                        stages=(BlockType.BLOCK_PAGE,), measured_at=1.0)],
            now=1.0,
        )
        unweighted = server.blocked_for_as(9, now=2.0, min_votes=0.6)
        assert {e.url for e in unweighted} == {
            "http://coarse.com/", "http://firm.com/"
        }
        weighted = server.blocked_for_as(
            9, now=2.0, min_reporters=0, min_votes=0.6,
            plane_weights={"encore": 0.5},
        )
        assert {e.url for e in weighted} == {"http://firm.com/"}


PLANE_NAMES = (DEFAULT_PLANE, "encore", "problist")
URLS = tuple(f"http://u{i}.com/" for i in range(4))

ledger_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("reports"),
            st.sampled_from(["c0", "c1", "c2", "c3"]),
            st.lists(
                st.sampled_from([(url, 1) for url in URLS]),
                max_size=4, unique=True,
            ),
        ),
        st.tuples(
            st.just("plane"),
            st.sampled_from(["c0", "c1", "c2", "c3"]),
            st.sampled_from(PLANE_NAMES),
        ),
        st.tuples(
            st.just("revoke"),
            st.sampled_from(["c0", "c1", "c2", "c3"]),
            st.none(),
        ),
    ),
    max_size=24,
)


class TestPlaneLedgerProperties:
    """The per-plane histograms are a *partition* of the aggregate, and
    the incremental mirror agrees with the from-scratch reference."""

    @staticmethod
    def apply(ledger, ops, with_planes):
        for op, client, arg in ops:
            if op == "reports":
                ledger.set_client_reports(client, arg)
            elif op == "plane":
                if with_planes:
                    ledger.set_client_plane(client, arg)
            else:
                ledger.revoke_client(client)

    @given(ops=ledger_ops)
    @settings(max_examples=60, deadline=None)
    def test_plane_tracking_never_disturbs_aggregate_stats(self, ops):
        tracked = VotingLedger()
        plain = VotingLedger()
        self.apply(tracked, ops, with_planes=True)
        self.apply(plain, ops, with_planes=False)
        for url in URLS:
            assert tracked.stats(url, 1) == plain.stats(url, 1)
            assert tracked.recompute_stats(url, 1) == tracked.stats(url, 1)

    @given(ops=ledger_ops)
    @settings(max_examples=60, deadline=None)
    def test_plane_histograms_partition_the_aggregate(self, ops):
        ledger = VotingLedger()
        self.apply(ledger, ops, with_planes=True)
        for url in URLS:
            total = ledger.stats(url, 1)
            by_plane = ledger.plane_stats(url, 1)
            assert sum(s.reporters for s in by_plane.values()) == total.reporters
            assert sum(s.votes for s in by_plane.values()) == pytest.approx(
                total.votes
            )
            all_ones = ledger.weighted_stats(
                url, 1, {name: 1.0 for name in PLANE_NAMES}
            )
            assert all_ones.reporters == pytest.approx(total.reporters)
            assert all_ones.votes == pytest.approx(total.votes)

    @given(ops=ledger_ops)
    @settings(max_examples=60, deadline=None)
    def test_incremental_plane_stats_match_recompute(self, ops):
        ledger = VotingLedger()
        self.apply(ledger, ops, with_planes=True)
        for url in URLS:
            for plane in PLANE_NAMES:
                incremental = ledger.stats_for_plane(url, 1, plane)
                reference = ledger.recompute_plane_stats(url, 1, plane)
                assert incremental == reference, (url, plane)


class TestPlaneSpecDsl:
    def toml_for(self, planes_block="", expect_block=""):
        return f"""
name = "mix"
description = "plane mix under test"
seed = 3

[execution]
mode = "cohort"

[cohort]
n_ases = 2
clients_per_as = 100
urls_per_as = 3
{planes_block}
{expect_block}
"""

    def load(self, text, tmp_path):
        from repro.scenarios import ScenarioSpec

        path = tmp_path / "mix.toml"
        path.write_text(text)
        spec = ScenarioSpec.from_toml(str(path))
        spec.validate()
        return spec

    def test_planes_section_parses_and_compiles(self, tmp_path):
        from repro.scenarios import ScenarioCompiler

        spec = self.load(
            self.toml_for(
                planes_block="""
[[planes]]
kind = "csaw"
fraction = 0.02

[[planes]]
kind = "encore"
fraction = 0.05
miss_rate = 0.1
weight = 0.5
""",
                expect_block="""
[[expect.plane]]
name = "encore"
min_reports = 1
""",
            ),
            tmp_path,
        )
        assert [p.name for p in spec.planes] == ["csaw", "encore"]
        assert spec.planes[1].weight == 0.5
        planes = ScenarioCompiler.compile_planes(spec)
        assert isinstance(planes[0], CSawBrowserPlane)
        assert isinstance(planes[1], EncoreProbePlane)
        assert planes[1].miss_rate == pytest.approx(0.1)

    def test_no_planes_section_compiles_to_none(self, tmp_path):
        from repro.scenarios import ScenarioCompiler

        spec = self.load(self.toml_for(), tmp_path)
        assert ScenarioCompiler.compile_planes(spec) is None

    def test_duplicate_plane_names_rejected(self, tmp_path):
        from repro.scenarios import SpecError

        with pytest.raises(SpecError, match="duplicate plane names"):
            self.load(
                self.toml_for(
                    planes_block="""
[[planes]]
kind = "encore"
fraction = 0.05

[[planes]]
kind = "encore"
fraction = 0.01
"""
                ),
                tmp_path,
            )

    def test_expect_plane_name_must_be_declared(self, tmp_path):
        from repro.scenarios import SpecError

        with pytest.raises(SpecError, match="unknown plane 'laser'"):
            self.load(
                self.toml_for(
                    expect_block="""
[[expect.plane]]
name = "laser"
"""
                ),
                tmp_path,
            )

    def test_expect_plane_defaults_to_csaw_when_no_mix(self, tmp_path):
        spec = self.load(
            self.toml_for(
                expect_block="""
[[expect.plane]]
name = "csaw"
min_reports = 1
"""
            ),
            tmp_path,
        )
        assert spec.expect.planes[0].name == "csaw"

    def test_planes_require_cohort_mode(self, tmp_path):
        from repro.scenarios import ScenarioSpec, SpecError

        path = tmp_path / "bad.toml"
        path.write_text(
            """
name = "bad"
description = "planes outside cohort mode"

[[sites]]
hostname = "a.example.com"

[[ases]]
asn = 64000

[[planes]]
kind = "csaw"
fraction = 0.01
"""
        )
        with pytest.raises(SpecError, match="requires cohort mode"):
            ScenarioSpec.from_toml(str(path)).validate()

    def test_hybrid_planes_pack_is_green(self):
        from repro.scenarios import ScenarioRunner, load_spec

        outcome = ScenarioRunner().run(load_spec("hybrid-planes"))
        assert outcome.report.ok, outcome.report.render()
        kinds = {check.kind for check in outcome.report.checks}
        assert "plane" in kinds
        assert set(outcome.fleet.reports_by_plane) == {
            "csaw", "encore", "problist"
        }


class TestPlaneAnalysis:
    def test_convergence_curves_are_monotone_fractions(self):
        from repro.analysis import plane_convergence_curves

        metrics = mixed_storm()
        curves = plane_convergence_curves(metrics)
        assert set(curves) == {"csaw", "encore", "problist"}
        for plane, points in curves.items():
            fractions = [f for _, f in points]
            assert fractions == sorted(fractions), plane
            assert 0.0 < fractions[-1] <= 1.0

    def test_plane_mix_table_renders_one_row_per_plane(self):
        from repro.analysis import plane_mix_rows, render_plane_mix

        metrics = mixed_storm()
        rows = plane_mix_rows(metrics)
        assert {row["plane"] for row in rows} == {"csaw", "encore", "problist"}
        table = render_plane_mix(metrics)
        for plane in ("csaw", "encore", "problist"):
            assert plane in table

    def test_voting_robustness_degenerate_sweep_matches_unweighted(self):
        from repro.analysis import voting_robustness

        server = ServerDB(entry_ttl=None)
        mixed_storm(server=server)
        asns = [52000 + i for i in range(4)]
        rows = voting_robustness(
            server, asns,
            weight_grids={"encore": (1.0, 0.5), "problist": (1.0,)},
            min_reporters=(1, 2),
        )
        assert len(rows) == 2 * 1 * 2
        baseline = {
            asn: len(server.blocked_for_as(asn, now=0.0, min_reporters=1))
            for asn in asns
        }
        uniform = next(
            row for row in rows
            if row["weights"] == {"encore": 1.0, "problist": 1.0}
            and row["min_reporters"] == 1
        )
        assert uniform["listed_by_as"] == baseline
        downweighted = next(
            row for row in rows
            if row["weights"] == {"encore": 0.5, "problist": 1.0}
            and row["min_reporters"] == 2
        )
        assert downweighted["listed"] <= uniform["listed"]
