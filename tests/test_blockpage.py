"""Tests for the two-phase block-page detector (§4.3.1)."""

import random

from repro.censor.blockpages import (
    DEFAULT_BLOCKPAGE_HTML,
    build_blockpage_corpus,
    build_normal_corpus,
)
from repro.core.blockpage import (
    BlockpageDetector,
    phase1_looks_like_blockpage,
    phase2_is_blockpage,
)
from repro.simnet.http import HttpResponse, _iframe_blockpage_html
from repro.simnet.web import make_normal_html


def make_response(html, size=None):
    return HttpResponse(
        status=200,
        url="http://x.example/",
        html=html,
        size_bytes=size if size is not None else len(html),
        server_ip="1.2.3.4",
    )


class TestPhase1:
    def test_default_blockpage_detected(self):
        assert phase1_looks_like_blockpage(DEFAULT_BLOCKPAGE_HTML)

    def test_iframe_splice_detected(self):
        assert phase1_looks_like_blockpage(_iframe_blockpage_html("block.isp.pk"))

    def test_normal_page_not_flagged(self):
        html = make_normal_html("www.news.com", "/article/1", [])
        assert not phase1_looks_like_blockpage(html)

    def test_large_page_never_flagged(self):
        # Even with blocking phrases, a large page is real content
        # (e.g. a news article ABOUT censorship).
        html = "<html><body>" + ("access denied " * 2000) + "</body></html>"
        assert not phase1_looks_like_blockpage(html)

    def test_empty_html_not_flagged(self):
        assert not phase1_looks_like_blockpage("")

    def test_recall_and_precision_on_corpus(self):
        """The paper's ~80 % recall / zero false positives (§4.3.1)."""
        rng = random.Random(42)
        blockpages = build_blockpage_corpus(rng, n_isps=47)
        normals = build_normal_corpus(rng, n_pages=200)

        caught = sum(
            1 for sample in blockpages if phase1_looks_like_blockpage(sample.html)
        )
        recall = caught / len(blockpages)
        assert 0.7 <= recall <= 0.9, f"phase-1 recall {recall:.2f} out of band"

        false_positives = sum(
            1 for html in normals if phase1_looks_like_blockpage(html)
        )
        assert false_positives == 0

    def test_overt_samples_all_caught(self):
        rng = random.Random(7)
        for sample in build_blockpage_corpus(rng, n_isps=47):
            if sample.overt:
                assert phase1_looks_like_blockpage(sample.html), sample.isp


class TestPhase2:
    def test_tiny_direct_vs_large_circumvented_is_blockpage(self):
        assert phase2_is_blockpage(direct_size=900, circumvented_size=360_000)

    def test_similar_sizes_not_blockpage(self):
        assert not phase2_is_blockpage(direct_size=300_000, circumvented_size=360_000)

    def test_zero_circumvented_size_is_inconclusive(self):
        assert not phase2_is_blockpage(direct_size=900, circumvented_size=0)

    def test_threshold_boundary(self):
        assert phase2_is_blockpage(29, 100, ratio_threshold=0.30)
        assert not phase2_is_blockpage(30, 100, ratio_threshold=0.30)

    def test_camouflaged_blockpage_caught_by_phase2(self):
        """Phase-1 misses bland pages; phase 2 nails them by size."""
        rng = random.Random(3)
        camouflaged = [
            s for s in build_blockpage_corpus(rng, n_isps=47) if not s.overt
        ]
        assert camouflaged, "corpus should include camouflage pages"
        for sample in camouflaged:
            assert not phase1_looks_like_blockpage(sample.html)
            assert phase2_is_blockpage(len(sample.html), 250_000)


class TestDetectorStateful:
    def test_counters(self):
        detector = BlockpageDetector()
        detector.phase1(make_response(DEFAULT_BLOCKPAGE_HTML))
        detector.phase1(make_response(make_normal_html("a.com", "/", [])))
        assert detector.phase1_hits == 1
        assert detector.phase1_passes == 1
        detector.phase2(
            make_response("tiny", size=500),
            make_response("big", size=300_000),
        )
        assert detector.phase2_hits == 1

    def test_custom_ratio_threshold(self):
        strict = BlockpageDetector(ratio_threshold=0.9)
        assert strict.phase2(
            make_response("x", size=200_000), make_response("y", size=300_000)
        )
