"""Unit tests for the web model, World facade, flow context, and relay
machinery."""

import pytest

from repro.censor.actions import IpAction, IpVerdict
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.circumvent.relay import relay_fetch
from repro.simnet.flow import ClientLoadTracker, FlowContext
from repro.simnet.web import EmbeddedRef, WebPage, make_normal_html
from repro.simnet.world import World


@pytest.fixture()
def world():
    w = World(seed=3)
    w.add_public_resolver()
    w.add_isp(100, "isp", policy=CensorPolicy())
    return w


class TestWebModel:
    def test_vhost_selection(self, world):
        shared = world.network.add_host("shared-server", "us-east")
        a = world.web.add_site("a.example", location="us-east", host=shared)
        b = world.web.add_site("b.example", location="us-east", host=shared)
        world.web.add_page("http://a.example/", size_bytes=1000)
        world.web.add_page("http://b.example/", size_bytes=2000)
        page_a = world.web.page_for(shared, "a.example", "/")
        page_b = world.web.page_for(shared, "b.example", "/")
        assert page_a.size_bytes == 1000
        assert page_b.size_bytes == 2000
        # Unknown vhost on a multi-site server: no default.
        assert world.web.page_for(shared, "c.example", "/") is None

    def test_default_vhost_on_single_site_server(self, world):
        site = world.web.add_site("solo.example", location="us-east")
        world.web.add_page("http://solo.example/", size_bytes=500)
        # Host header carries an IP (ip-as-hostname): default site answers.
        page = world.web.page_for(site.host, site.host.ip, "/")
        assert page is not None and page.size_bytes == 500

    def test_catch_all_site(self, world):
        site = world.web.add_site(
            "cdn.example", location="global-anycast",
            catch_all=lambda path: WebPage(
                url=f"http://cdn.example{path}", size_bytes=123
            ),
        )
        assert site.page("/anything/else.jpg").size_bytes == 123

    def test_duplicate_site_rejected(self, world):
        world.web.add_site("dup.example", location="uk")
        with pytest.raises(ValueError):
            world.web.add_site("dup.example", location="uk")

    def test_page_must_belong_to_site(self, world):
        world.web.add_site("mine.example", location="uk")
        with pytest.raises(ValueError):
            world.web.add_page("http://other.example/", size_bytes=10)

    def test_page_size_validation(self, world):
        world.web.add_site("size.example", location="uk")
        with pytest.raises(ValueError):
            world.web.add_page("http://size.example/", size_bytes=0)

    def test_total_bytes_includes_embedded(self):
        page = WebPage(
            url="http://x.example/",
            size_bytes=1000,
            embedded=[EmbeddedRef("http://cdn.example/a", 300),
                      EmbeddedRef("http://cdn.example/b", 200)],
        )
        assert page.total_bytes == 1500

    def test_auto_html_generated(self, world):
        world.web.add_site("auto.example", location="uk")
        page = world.web.add_page("http://auto.example/news", size_bytes=1000)
        assert "auto.example" in page.html
        assert "<html>" in page.html

    def test_normal_html_mentions_embedded(self):
        html = make_normal_html(
            "h.example", "/", [EmbeddedRef("http://cdn.example/x.jpg", 10)]
        )
        assert "http://cdn.example/x.jpg" in html

    def test_site_dns_registered(self, world):
        site = world.web.add_site("dnsreg.example", location="uk")
        assert world.network.authoritative_ips("dnsreg.example") == [
            site.host.ip
        ]


class TestWorldFacade:
    def test_transit_as_idempotent(self, world):
        a = world.transit_as()
        b = world.transit_as()
        assert a is b
        assert world.resolvers[a.asn].kind == "isp"

    def test_relay_ctx_is_uncensored(self, world):
        relay = world.network.add_host("relay-x", "uk")
        ctx = world.relay_ctx(relay)
        assert ctx.middlebox is None
        assert ctx.client is relay

    def test_isp_resolver_missing_raises(self, world):
        isp = world.network.add_as(999, "bare", "pakistan")
        client, access = world.add_client("c1", [isp])
        ctx = world.new_ctx(client, access)
        with pytest.raises(KeyError):
            world.isp_resolver(ctx)

    def test_duplicate_isp_rejected(self, world):
        with pytest.raises(ValueError):
            world.add_isp(100, "again")

    def test_run_process_returns_value(self, world):
        def proc():
            yield world.env.timeout(1)
            return "done"

        assert world.run_process(proc()) == "done"


class TestFlowContext:
    def test_for_new_flow_picks_isp(self, world):
        isp = world.network.ases[100]
        client, access = world.add_client("fc", [isp])
        ctx = FlowContext.for_new_flow(client, access, world.rngs.stream("fc"))
        assert ctx.isp is isp
        assert ctx.middlebox is isp.censor

    def test_with_isp_keeps_load(self, world):
        isp = world.network.ases[100]
        other = world.network.add_as(101, "other", "pakistan")
        client, access = world.add_client("fc2", [isp])
        ctx = FlowContext.for_new_flow(client, access, world.rngs.stream("fc2"))
        pinned = ctx.with_isp(other)
        assert pinned.isp is other
        assert pinned.load is ctx.load
        assert pinned.client is ctx.client

    def test_load_tracker_factor_shape(self):
        tracker = ClientLoadTracker(penalty=0.2, capacity=3, max_factor=2.0)
        assert tracker.factor() == 1.0
        tracker.enter()
        assert tracker.factor() == 1.0  # one request: no contention
        tracker.enter()
        two = tracker.factor()
        tracker.enter()
        three = tracker.factor()
        assert 1.0 < two < three <= 2.0
        for _ in range(3):
            tracker.exit()
        with pytest.raises(RuntimeError):
            tracker.exit()

    def test_load_factor_saturates(self):
        tracker = ClientLoadTracker(max_factor=1.5)
        for _ in range(50):
            tracker.enter()
        assert tracker.factor() == 1.5
        assert tracker.peak == 50


class TestRelayFetch:
    def make_world(self):
        world = World(seed=8)
        world.add_public_resolver()
        policy = CensorPolicy()
        isp = world.add_isp(200, "isp", policy=policy)
        world.web.add_site("origin.example", location="us-east")
        world.web.add_page("http://origin.example/", size_bytes=100_000)
        relay = world.network.add_host(
            "relay-host", "netherlands", bandwidth_bps=50e6
        )
        client, access = world.add_client("rc", [isp])
        ctx = world.new_ctx(client, access)
        return world, policy, relay, ctx

    def test_relay_fetch_succeeds(self):
        world, _policy, relay, ctx = self.make_world()
        result = world.run_process(
            relay_fetch(world, ctx, "http://origin.example/", relay,
                        transport_name="test-relay")
        )
        assert result.ok
        assert result.transport == "test-relay"
        assert result.response.size_bytes == 100_000

    def test_relay_blocked_by_censor(self):
        world, policy, relay, ctx = self.make_world()
        policy.add_rule(
            Rule(matcher=Matcher(ips={relay.ip}), ip=IpVerdict(IpAction.DROP))
        )
        result = world.run_process(
            relay_fetch(world, ctx, "http://origin.example/", relay,
                        transport_name="test-relay")
        )
        assert result.failed
        assert result.failure_stage == "tcp"

    def test_bandwidth_cap_slows_transfer(self):
        world, _policy, relay, ctx = self.make_world()
        fast = world.run_process(
            relay_fetch(world, ctx, "http://origin.example/", relay,
                        transport_name="fast")
        )
        slow = world.run_process(
            relay_fetch(world, ctx, "http://origin.example/", relay,
                        transport_name="slow", bandwidth_cap_bps=0.5e6)
        )
        assert slow.elapsed > fast.elapsed

    def test_origin_failure_surfaced(self):
        world, _policy, relay, ctx = self.make_world()
        result = world.run_process(
            relay_fetch(world, ctx, "http://no-such-origin.example/", relay,
                        transport_name="test-relay")
        )
        assert result.failed
        assert result.failure_stage == "dns"
