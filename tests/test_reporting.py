"""Tests for registration, report upload, and blocked-list download."""

import pytest

from repro.core import (
    BlockStatus,
    BlockType,
    CSawClient,
    CSawConfig,
    RegistrationError,
    ServerDB,
)
from repro.core.reporting import GlobalView, ensure_collector
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=101, with_proxy_fleet=False)


def make_client(scenario, name, server, isp=None, report_via_tor=False, **kw):
    report_transport = (
        scenario.tor_transport(f"report/{name}") if report_via_tor else None
    )
    return CSawClient(
        scenario.world,
        name,
        [isp or scenario.isp_a],
        transports=scenario.make_transports(name),
        server_db=server,
        report_transport=report_transport,
        **kw,
    )


class TestGlobalView:
    def test_lookup_exact_and_base(self):
        from repro.core.globaldb import GlobalEntry

        view = GlobalView()
        entry = GlobalEntry(
            url="http://foo.com/",
            asn=1,
            stages=[BlockType.BLOCK_PAGE],
            measured_at=0.0,
            posted_at=0.0,
            last_uuid="u",
        )
        view.replace([entry], now=1.0)
        assert view.lookup("http://foo.com/") is entry
        assert view.lookup("http://foo.com/deep/page") is entry
        assert view.lookup("http://bar.com/") is None

    def test_replace_overwrites(self):
        view = GlobalView()
        view.replace([], now=2.0)
        assert len(view) == 0
        assert view.last_synced == 2.0


class TestRegistration:
    def test_register_assigns_uuid_and_downloads(self, scenario):
        server = ServerDB()
        client = make_client(scenario, "r1", server)

        def flow():
            uuid = yield from client.install()
            return uuid

        uuid = scenario.world.run_process(flow())
        assert uuid is not None
        assert server.is_registered(uuid)
        assert client.reporting.registered
        assert client.global_view.last_synced is not None

    def test_failed_captcha_raises(self, scenario):
        server = ServerDB()
        client = make_client(scenario, "r2", server)

        def flow():
            with pytest.raises(RegistrationError):
                yield from client.install(captcha_passed=False)

        scenario.world.run_process(flow())

    def test_post_without_registration_rejected(self, scenario):
        server = ServerDB()
        client = make_client(scenario, "r3", server)

        def flow():
            with pytest.raises(RuntimeError):
                yield from client.reporting.post_reports(client.new_ctx())

        scenario.world.run_process(flow())


class TestReportLifecycle:
    def test_blocked_measurement_reaches_global_db(self, scenario):
        server = ServerDB()
        client = make_client(scenario, "l1", server)

        def flow():
            yield from client.install()
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            accepted = yield from client.reporting.post_reports(client.new_ctx())
            return accepted

        accepted = scenario.world.run_process(flow())
        assert accepted == 1
        entry = server.entry(scenario.urls["youtube"], scenario.isp_a.asn)
        assert entry is not None
        assert BlockType.BLOCK_PAGE in entry.stages
        assert server.update_count == 1

    def test_reports_not_reposted(self, scenario):
        server = ServerDB()
        client = make_client(scenario, "l2", server)

        def flow():
            yield from client.install()
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            first = yield from client.reporting.post_reports(client.new_ctx())
            second = yield from client.reporting.post_reports(client.new_ctx())
            return first, second

        first, second = scenario.world.run_process(flow())
        assert (first, second) == (1, 0)

    def test_reports_over_tor_cost_more_time(self, scenario):
        server = ServerDB()
        direct_client = make_client(scenario, "l3", server)
        tor_client = make_client(scenario, "l4", server, report_via_tor=True)

        def time_post(client, url_key):
            def flow():
                yield from client.install()
                response = yield from client.request(scenario.urls[url_key])
                yield response.measurement_process
                start = scenario.world.env.now
                yield from client.reporting.post_reports(client.new_ctx())
                return scenario.world.env.now - start

            return scenario.world.run_process(flow())

        direct_cost = time_post(direct_client, "youtube")
        tor_cost = time_post(tor_client, "porn")
        assert tor_cost > direct_cost

    def test_periodic_loop_posts_and_downloads(self, scenario):
        server = ServerDB()
        config = CSawConfig(report_interval=100.0, download_interval=100.0)
        client = make_client(scenario, "l5", server, config=config)
        world = scenario.world

        def flow():
            yield from client.install()
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process

        world.run_process(flow())
        downloads_before = client.reporting.downloads
        client.start_background(until=world.env.now + 500)
        world.env.run(until=world.env.now + 600)
        assert client.reporting.reports_posted >= 1
        assert client.reporting.downloads > downloads_before

    def test_collector_site_idempotent(self, scenario):
        url_a = ensure_collector(scenario.world)
        url_b = ensure_collector(scenario.world)
        assert url_a == url_b


class TestDeltaSyncEndToEnd:
    def test_periodic_pulls_use_delta_sync(self, scenario):
        """First pull transfers the full snapshot; every later pull rides
        the shard version and transfers only the diff."""
        server = ServerDB()
        alice = make_client(scenario, "d-alice", server)
        bob = make_client(scenario, "d-bob", server)
        world = scenario.world

        def flow():
            yield from alice.install()
            response = yield from alice.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from alice.reporting.post_reports(alice.new_ctx())
            yield from bob.install()  # full snapshot: one entry
            # Nothing changed since: an empty delta.
            yield from bob.reporting.download_blocked_list(bob.new_ctx())
            # Alice reports a second URL; bob picks it up incrementally.
            response = yield from alice.request(scenario.urls["porn"])
            yield response.measurement_process
            yield from alice.reporting.post_reports(alice.new_ctx())
            yield from bob.reporting.download_blocked_list(bob.new_ctx())

        world.run_process(flow())
        rep = bob.reporting
        assert rep.full_syncs == 1  # only the install-time pull
        assert rep.delta_syncs == 2
        assert len(bob.global_view) == 2
        assert bob.global_view.version == server.version_for_as(
            scenario.isp_a.asn
        )
        assert bob.global_view.synced_asn == scenario.isp_a.asn
        # Rows on the wire: 1 (full) + 0 (empty delta) + 2 (the new entry,
        # plus the old one whose vote mass moved when alice's d doubled).
        assert rep.sync_rows_received == 3
        assert server.full_syncs_served >= 1
        assert server.delta_syncs_served == 2

    def test_migration_forces_full_resync(self, scenario):
        """After mobility the cached version belongs to another AS's
        shard, so the client must not present it as a delta basis."""
        server = ServerDB()
        alice = make_client(scenario, "m-alice", server)
        bob = make_client(scenario, "m-bob", server)
        world = scenario.world

        def flow():
            yield from alice.install()
            response = yield from alice.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from alice.reporting.post_reports(alice.new_ctx())
            yield from bob.install()
            yield from bob.reporting.download_blocked_list(bob.new_ctx())
            yield from bob.migrate([scenario.isp_b])

        world.run_process(flow())
        assert bob.reporting.delta_syncs == 1  # the pre-migration pull
        assert bob.reporting.full_syncs == 2  # install + post-migration
        assert bob.global_view.synced_asn == scenario.isp_b.asn


class TestCrowdsourcing:
    def test_second_client_benefits_from_first(self, scenario):
        """The crowdsourcing loop: user A measures, user B downloads and
        circumvents immediately — richer data, better circumvention."""
        server = ServerDB()
        alice = make_client(scenario, "alice", server)
        bob = make_client(scenario, "bob", server)
        world = scenario.world

        def flow():
            yield from alice.install()
            response = yield from alice.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from alice.reporting.post_reports(alice.new_ctx())
            # Bob installs afterwards: registration pulls the blocked list.
            yield from bob.install()
            bob_response = yield from bob.request(scenario.urls["youtube"])
            yield bob_response.measurement_process
            return bob_response

        bob_response = world.run_process(flow())
        assert bob_response.ok
        assert bob_response.status is BlockStatus.BLOCKED
        assert len(bob.global_view) == 1

    def test_cross_as_entries_not_shared(self, scenario):
        server = ServerDB()
        alice = make_client(scenario, "alice-a", server, isp=scenario.isp_a)
        bob = make_client(scenario, "bob-b", server, isp=scenario.isp_b)
        world = scenario.world

        def flow():
            yield from alice.install()
            response = yield from alice.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from alice.reporting.post_reports(alice.new_ctx())
            yield from bob.install()

        world.run_process(flow())
        # Bob is on ISP-B; Alice's ISP-A entry must not leak to him.
        assert bob.global_view.lookup(scenario.urls["youtube"]) is None
