"""Integration tests for the simulated protocol stack (DNS/TCP/TLS/HTTP)."""

import pytest

from repro.censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.simnet.dns import DnsTimeout, NxDomain, Refused, ServFail, resolve
from repro.simnet.http import HttpTimeout, http_exchange
from repro.simnet.tcp import ConnectionReset, ConnectTimeout, tcp_connect
from repro.simnet.tls import TlsTimeout, tls_handshake
from repro.simnet.world import World


def build_world(policy=None):
    world = World(seed=11)
    world.add_public_resolver()
    isp = world.add_isp(100, "test-isp", policy=policy)
    client, access = world.add_client("client", [isp])
    world.web.add_site("www.ok.example", location="us-east")
    world.web.add_page("http://www.ok.example/", size_bytes=50_000)
    world.web.add_page("http://www.ok.example/page", size_bytes=20_000)
    ctx = world.new_ctx(client, access)
    return world, ctx


def run(world, gen):
    return world.run_process(gen)


class TestDns:
    def test_honest_resolution(self):
        world, ctx = build_world()
        ips = run(
            world,
            resolve(world.env, world.network, ctx, "www.ok.example",
                    world.isp_resolver(ctx)),
        )
        assert ips == [world.network.hosts_by_name["www.ok.example"].ip]
        assert 0 < world.env.now < 1.0

    def test_nonexistent_domain_nxdomain(self):
        world, ctx = build_world()

        def proc():
            with pytest.raises(NxDomain):
                yield from resolve(
                    world.env, world.network, ctx, "nope.example",
                    world.isp_resolver(ctx),
                )

        run(world, proc())

    @pytest.mark.parametrize(
        "action,exc,min_t,max_t",
        [
            (DnsAction.SERVFAIL, ServFail, 9.0, 13.0),  # Table 5: 10.6s
            (DnsAction.REFUSED, Refused, 0.0, 0.2),  # Table 5: 0.025s
            (DnsAction.TIMEOUT, DnsTimeout, 9.0, 11.0),
            (DnsAction.NXDOMAIN, NxDomain, 0.0, 0.2),
        ],
    )
    def test_tampering_timing(self, action, exc, min_t, max_t):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(matcher=Matcher(domains={"bad.example"}), dns=DnsVerdict(action))
        )
        world, ctx = build_world(policy)
        world.web.add_site("bad.example", location="us-east")

        def proc():
            with pytest.raises(exc):
                yield from resolve(
                    world.env, world.network, ctx, "bad.example",
                    world.isp_resolver(ctx),
                )

        run(world, proc())
        assert min_t <= world.env.now <= max_t

    def test_redirect_returns_forged_address(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"bad.example"}),
                dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.0.0.1"),
            )
        )
        world, ctx = build_world(policy)
        ips = run(
            world,
            resolve(world.env, world.network, ctx, "bad.example",
                    world.isp_resolver(ctx)),
        )
        assert ips == ["10.0.0.1"]

    def test_public_resolver_bypasses_resolver_scope_tampering(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                dns=DnsVerdict(DnsAction.NXDOMAIN, scope="resolver"),
            )
        )
        world, ctx = build_world(policy)
        ips = run(
            world,
            resolve(world.env, world.network, ctx, "www.ok.example",
                    world.public_resolver),
        )
        assert ips  # honest answer via public DNS

    def test_path_scope_tampering_hits_public_resolver_too(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                dns=DnsVerdict(DnsAction.NXDOMAIN, scope="path"),
            )
        )
        world, ctx = build_world(policy)

        def proc():
            with pytest.raises(NxDomain):
                yield from resolve(
                    world.env, world.network, ctx, "www.ok.example",
                    world.public_resolver,
                )

        run(world, proc())


class TestTcp:
    def test_successful_handshake(self):
        world, ctx = build_world()
        server_ip = world.network.hosts_by_name["www.ok.example"].ip
        conn = run(world, tcp_connect(world.env, world.network, ctx, server_ip))
        assert conn.dst_ip == server_ip
        assert conn.rtt > 0

    def test_blackhole_burns_syn_schedule(self):
        policy = CensorPolicy()
        world, ctx = build_world(policy)
        server_ip = world.network.hosts_by_name["www.ok.example"].ip
        policy.add_rule(
            Rule(matcher=Matcher(ips={server_ip}), ip=IpVerdict(IpAction.DROP))
        )

        def proc():
            with pytest.raises(ConnectTimeout):
                yield from tcp_connect(world.env, world.network, ctx, server_ip)

        run(world, proc())
        assert world.env.now == pytest.approx(21.0)  # Table 5: 21s

    def test_rst_injection_fails_fast(self):
        policy = CensorPolicy()
        world, ctx = build_world(policy)
        server_ip = world.network.hosts_by_name["www.ok.example"].ip
        policy.add_rule(
            Rule(matcher=Matcher(ips={server_ip}), ip=IpVerdict(IpAction.RST))
        )

        def proc():
            with pytest.raises(ConnectionReset):
                yield from tcp_connect(world.env, world.network, ctx, server_ip)

        run(world, proc())
        assert world.env.now < 1.0

    def test_connect_to_nowhere_times_out(self):
        world, ctx = build_world()

        def proc():
            with pytest.raises(ConnectTimeout):
                yield from tcp_connect(world.env, world.network, ctx, "10.9.9.9")

        run(world, proc())


class TestTlsAndHttp:
    def make_conn(self, world, ctx, hostname="www.ok.example"):
        server_ip = world.network.hosts_by_name[hostname].ip
        return world.run_process(
            tcp_connect(world.env, world.network, ctx, server_ip)
        )

    def test_tls_sni_drop(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                tls=TlsVerdict(TlsAction.DROP),
            )
        )
        world, ctx = build_world(policy)
        conn = self.make_conn(world, ctx)

        def proc():
            with pytest.raises(TlsTimeout):
                yield from tls_handshake(world.env, ctx, conn, "www.ok.example")

        run(world, proc())

    def test_tls_fronted_sni_passes(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                tls=TlsVerdict(TlsAction.DROP),
            )
        )
        world, ctx = build_world(policy)
        conn = self.make_conn(world, ctx)
        duration = run(
            world, tls_handshake(world.env, ctx, conn, "www.front.example")
        )
        assert duration > 0

    def test_http_200_with_page(self):
        world, ctx = build_world()
        conn = self.make_conn(world, ctx)
        response = run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/",
            ),
        )
        assert response.status == 200
        assert response.size_bytes == 50_000
        assert not response.injected

    def test_http_404_for_unknown_path(self):
        world, ctx = build_world()
        conn = self.make_conn(world, ctx)
        response = run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/missing",
            ),
        )
        assert response.status == 404

    def test_http_censor_drop_times_out(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                http=HttpVerdict(HttpAction.DROP),
            )
        )
        world, ctx = build_world(policy)
        conn = self.make_conn(world, ctx)

        def proc():
            start = world.env.now
            with pytest.raises(HttpTimeout):
                yield from http_exchange(
                    world.env, world.network, world.web, ctx, conn,
                    "http", "www.ok.example", "/",
                )
            assert world.env.now - start == pytest.approx(10.0)

        run(world, proc())

    def test_https_invisible_to_http_censor(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                http=HttpVerdict(HttpAction.DROP),
            )
        )
        world, ctx = build_world(policy)
        conn = self.make_conn(world, ctx)
        response = run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "https", "www.ok.example", "/",
            ),
        )
        assert response.status == 200

    def test_blockpage_redirect_injected(self):
        policy = CensorPolicy()
        world, ctx = build_world(policy)
        blockpage = world.web.add_site("block.isp.example", location="pakistan")
        world.web.add_page("http://block.isp.example/", size_bytes=1_000)
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage.host.ip
                ),
            )
        )
        conn = self.make_conn(world, ctx)
        response = run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/",
            ),
        )
        assert response.status == 302
        assert response.injected
        assert response.location == "http://block.isp.example/"

    def test_blockpage_iframe_injected(self):
        policy = CensorPolicy()
        world, ctx = build_world(policy)
        blockpage = world.web.add_site("block2.isp.example", location="pakistan")
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.ok.example"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_IFRAME, blockpage_ip=blockpage.host.ip
                ),
            )
        )
        conn = self.make_conn(world, ctx)
        response = run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/",
            ),
        )
        assert response.status == 200
        assert response.injected
        assert "<iframe" in response.html
        assert response.size_bytes < 2_000

    def test_transfer_time_scales_with_size(self):
        world, ctx = build_world()
        conn = self.make_conn(world, ctx)
        t0 = world.env.now
        run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/page",
            ),
        )
        small_elapsed = world.env.now - t0
        t1 = world.env.now
        run(
            world,
            http_exchange(
                world.env, world.network, world.web, ctx, conn,
                "http", "www.ok.example", "/",
            ),
        )
        large_elapsed = world.env.now - t1
        assert large_elapsed > small_elapsed
