"""Unit + property tests for URL parsing and base/derived semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.urlkit import (
    base_url,
    is_base_url,
    is_derived_of,
    normalize_url,
    parse_url,
    registered_domain,
)


def test_parse_basic():
    parsed = parse_url("http://www.foo.com/a.html")
    assert parsed.scheme == "http"
    assert parsed.host == "www.foo.com"
    assert parsed.port == 80
    assert parsed.path == "/a.html"
    assert parsed.url == "http://www.foo.com/a.html"


def test_parse_defaults_path_to_root():
    assert parse_url("https://example.com").path == "/"


def test_parse_explicit_port():
    parsed = parse_url("http://example.com:8080/x")
    assert parsed.port == 8080
    assert parsed.origin == "http://example.com:8080"


def test_default_port_elided_in_origin():
    assert parse_url("https://example.com:443/x").origin == "https://example.com"


def test_host_lowercased():
    assert parse_url("http://WWW.Foo.COM/Path").host == "www.foo.com"
    assert parse_url("http://WWW.Foo.COM/Path").path == "/Path"  # path case kept


@pytest.mark.parametrize(
    "bad",
    ["ftp://x.com/", "no-scheme.com/x", "http:///path", "http://h:0/","http://h:70000/"],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_url(bad)


def test_base_url_and_is_base():
    assert base_url("http://www.foo.com/a/b.html") == "http://www.foo.com/"
    assert is_base_url("http://www.foo.com/")
    assert not is_base_url("http://www.foo.com/a")


def test_with_scheme_switches_default_port():
    parsed = parse_url("http://foo.com/x").with_scheme("https")
    assert parsed.scheme == "https"
    assert parsed.port == 443


def test_with_scheme_keeps_custom_port():
    parsed = parse_url("http://foo.com:8080/x").with_scheme("https")
    assert parsed.port == 8080


def test_is_derived_of_root_base():
    assert is_derived_of("http://foo.com/a.html", "http://foo.com/")
    assert is_derived_of("http://foo.com/", "http://foo.com/")
    assert not is_derived_of("http://bar.com/a", "http://foo.com/")
    assert not is_derived_of("https://foo.com/a", "http://foo.com/")


def test_is_derived_of_path_prefix():
    assert is_derived_of("http://foo.com/a/b", "http://foo.com/a")
    assert is_derived_of("http://foo.com/a", "http://foo.com/a")
    assert not is_derived_of("http://foo.com/ab", "http://foo.com/a")


def test_registered_domain():
    assert registered_domain("www.foo.com") == "foo.com"
    assert registered_domain("a.b.c.example.org") == "example.org"
    assert registered_domain("foo.com") == "foo.com"
    assert registered_domain("localhost") == "localhost"


_hosts = st.from_regex(r"[a-z][a-z0-9]{0,8}(\.[a-z][a-z0-9]{0,8}){1,3}", fullmatch=True)
_paths = st.from_regex(r"(/[a-z0-9]{1,6}){0,4}/?", fullmatch=True)
_schemes = st.sampled_from(["http", "https"])


@given(_schemes, _hosts, _paths)
def test_parse_roundtrip_is_idempotent(scheme, host, path):
    url = f"{scheme}://{host}{path or '/'}"
    normalized = normalize_url(url)
    assert normalize_url(normalized) == normalized
    parsed = parse_url(normalized)
    assert parsed.host == host
    assert parsed.scheme == scheme


@given(_schemes, _hosts, _paths)
def test_every_url_derives_from_its_base(scheme, host, path):
    url = f"{scheme}://{host}{path or '/'}"
    assert is_derived_of(url, base_url(url))


@given(_schemes, _hosts, _paths, _paths)
def test_derivation_requires_same_origin(scheme, host, path_a, path_b):
    url_a = f"{scheme}://{host}{path_a or '/'}"
    url_b = f"{scheme}://x{host}{path_b or '/'}"
    assert not is_derived_of(url_a, url_b)
