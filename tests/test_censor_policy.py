"""Tests for censor matchers, policies, and middleboxes."""

import pytest

from repro.censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from repro.censor.middlebox import Middlebox
from repro.censor.policy import CensorPolicy, Matcher, Rule


class TestMatcher:
    def test_domain_suffix_matching(self):
        matcher = Matcher(domains={"youtube.com"})
        assert matcher.matches_qname("youtube.com")
        assert matcher.matches_qname("www.youtube.com")
        assert matcher.matches_qname("m.youtube.com.")
        assert not matcher.matches_qname("notyoutube.com")
        assert not matcher.matches_qname("youtube.com.evil.net")

    def test_keyword_matching_in_url(self):
        matcher = Matcher(keywords={"porn"})
        assert matcher.matches_url("www.pornsite.com", "/")
        assert matcher.matches_url("www.foo.com", "/porn/videos")
        assert not matcher.matches_url("www.foo.com", "/recipes")

    def test_ip_matching(self):
        matcher = Matcher(ips={"1.2.3.4"})
        assert matcher.matches_ip("1.2.3.4")
        assert not matcher.matches_ip("1.2.3.5")

    def test_sni_matching(self):
        matcher = Matcher(domains={"youtube.com"}, keywords={"tube"})
        assert matcher.matches_sni("www.youtube.com")
        assert matcher.matches_sni("tube-mirror.net")
        assert not matcher.matches_sni(None)
        assert not matcher.matches_sni("example.com")

    def test_empty_matcher_rejected(self):
        with pytest.raises(ValueError):
            Matcher()

    def test_case_insensitive(self):
        matcher = Matcher(domains={"YouTube.COM"})
        assert matcher.matches_qname("WWW.YOUTUBE.com")


class TestCensorPolicy:
    def make_policy(self):
        policy = CensorPolicy(name="test")
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"blocked.example"}),
                dns=DnsVerdict(DnsAction.NXDOMAIN),
                http=HttpVerdict(HttpAction.DROP),
                label="multi",
            )
        )
        policy.add_rule(
            Rule(
                matcher=Matcher(ips={"9.9.9.9"}),
                ip=IpVerdict(IpAction.RST),
                label="ip-rule",
            )
        )
        return policy

    def test_first_match_wins(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"x.example"}),
                dns=DnsVerdict(DnsAction.NXDOMAIN),
            )
        )
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"x.example"}),
                dns=DnsVerdict(DnsAction.SERVFAIL),
            )
        )
        assert policy.on_dns_query("x.example").action is DnsAction.NXDOMAIN

    def test_pass_when_no_match(self):
        policy = self.make_policy()
        assert policy.on_dns_query("fine.example").action is DnsAction.PASS
        assert policy.on_packet("8.8.8.8").action is IpAction.PASS
        assert policy.on_http_request("fine.example", "/").action is HttpAction.PASS
        assert policy.on_tls_client_hello("fine.example", "8.8.8.8").action is TlsAction.PASS

    def test_stage_specific_verdicts(self):
        policy = self.make_policy()
        assert policy.on_dns_query("www.blocked.example").action is DnsAction.NXDOMAIN
        assert policy.on_http_request("blocked.example", "/x").action is HttpAction.DROP
        assert policy.on_packet("9.9.9.9").action is IpAction.RST
        # The domain rule has no TLS verdict.
        assert (
            policy.on_tls_client_hello("blocked.example", "1.1.1.1").action
            is TlsAction.PASS
        )

    def test_tls_matches_on_ip_too(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(ips={"5.5.5.5"}),
                tls=TlsVerdict(TlsAction.RST),
            )
        )
        assert policy.on_tls_client_hello(None, "5.5.5.5").action is TlsAction.RST

    def test_remove_rules_by_label(self):
        policy = self.make_policy()
        assert policy.remove_rules("multi") == 1
        assert policy.on_dns_query("blocked.example").action is DnsAction.PASS

    def test_redirect_verdict_requires_ip(self):
        with pytest.raises(ValueError):
            DnsVerdict(DnsAction.REDIRECT)

    def test_blockpage_verdict_requires_ip(self):
        with pytest.raises(ValueError):
            HttpVerdict(HttpAction.BLOCKPAGE_REDIRECT)

    def test_dns_scope_validation(self):
        with pytest.raises(ValueError):
            DnsVerdict(DnsAction.NXDOMAIN, scope="bogus")


class TestMiddlebox:
    def test_logs_only_enforcement(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"bad.example"}),
                dns=DnsVerdict(DnsAction.SERVFAIL),
            )
        )
        box = Middlebox(policy=policy, asn=1)
        box.dns_query(1.0, "good.example")
        assert box.blocked_event_count() == 0
        box.dns_query(2.0, "bad.example")
        assert box.blocked_event_count() == 1
        event = box.log[0]
        assert event.stage == "dns"
        assert event.identifier == "bad.example"
        assert event.action == "servfail"
        assert event.time == 2.0

    def test_disabled_middlebox_passes_everything(self):
        policy = CensorPolicy()
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"bad.example"}),
                dns=DnsVerdict(DnsAction.SERVFAIL),
                http=HttpVerdict(HttpAction.DROP),
                ip=IpVerdict(IpAction.DROP),
                tls=TlsVerdict(TlsAction.DROP),
            )
        )
        box = Middlebox(policy=policy, asn=1, enabled=False)
        assert box.dns_query(0, "bad.example").action is DnsAction.PASS
        assert box.packet(0, "9.9.9.9").action is IpAction.PASS
        assert box.http_request(0, "bad.example", "/").action is HttpAction.PASS
        assert box.tls_client_hello(0, "bad.example", "1.1.1.1").action is TlsAction.PASS
        assert box.blocked_event_count() == 0
