"""Integration tests for the measurement module (Algorithm 1)."""

import pytest

from repro.core import (
    BlockStatus,
    BlockType,
    CSawClient,
    CSawConfig,
    ServerDB,
)
from repro.workloads.scenarios import pakistan_case_study


def make_client(scenario, isp, name, config=None, include=None, server=None):
    return CSawClient(
        scenario.world,
        name,
        [isp] if not isinstance(isp, list) else isp,
        transports=scenario.make_transports(name, include=include),
        config=config,
        server_db=server,
    )


def request(scenario, client, url):
    """One request, joined with its background measurement."""

    def proc():
        response = yield from client.request(url)
        yield response.measurement_process
        return response

    return scenario.world.run_process(proc())


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=77, with_proxy_fleet=False)


class TestUnknownUrlFlow:
    def test_unblocked_served_from_direct(self, scenario):
        client = make_client(scenario, scenario.isp_a, "m1")
        response = request(scenario, client, scenario.urls["small-unblocked"])
        assert response.ok
        assert response.path == "direct"
        assert response.status is BlockStatus.NOT_BLOCKED
        status, _ = client.local_db.lookup(scenario.urls["small-unblocked"])
        assert status is BlockStatus.NOT_BLOCKED

    def test_blockpage_detected_and_circumvented(self, scenario):
        client = make_client(scenario, scenario.isp_a, "m2")
        response = request(scenario, client, scenario.urls["youtube"])
        assert response.status is BlockStatus.BLOCKED
        assert BlockType.BLOCK_PAGE in response.stages
        assert response.ok
        assert response.path != "direct"
        # The user never saw the block page: no correction needed.
        assert not response.corrected

    def test_phase2_rejects_false_positive(self, scenario):
        """A small legit page with blocky words: phase 1 flags, phase 2
        (similar sizes via circumvention) clears it."""
        world = scenario.world
        world.web.add_site("smallblog.example", location="us-east")
        world.web.add_page(
            "http://smallblog.example/",
            size_bytes=900,
            html=(
                "<html><head><title>my blog</title></head><body>"
                "<p>today my comment was restricted on a forum — access "
                "denied, they said!</p></body></html>"
            ),
        )
        client = make_client(scenario, scenario.isp_a, "m3")
        response = request(scenario, client, "http://smallblog.example/")
        assert response.status is BlockStatus.NOT_BLOCKED

    def test_hard_failure_served_from_circumvention(self, scenario):
        client = make_client(scenario, scenario.isp_b, "m4")
        response = request(scenario, client, scenario.urls["youtube"])
        assert response.status is BlockStatus.BLOCKED
        assert BlockType.DNS_REDIRECT in response.stages
        assert response.ok
        assert response.path in ("tor", "lantern")

    def test_serial_mode_waits_for_detection(self, scenario):
        parallel_client = make_client(
            scenario, scenario.isp_b, "m5p",
            config=CSawConfig(redundancy_mode="parallel"),
            include=["tor"],
        )
        serial_client = make_client(
            scenario, scenario.isp_b, "m5s",
            config=CSawConfig(redundancy_mode="serial"),
            include=["tor"],
        )
        p = request(scenario, parallel_client, scenario.urls["youtube"])
        s = request(scenario, serial_client, scenario.urls["youtube"])
        assert p.ok and s.ok
        # Serial pays detection time + circumvention time in sequence.
        assert s.plt > p.plt

    def test_record_written_once_measured(self, scenario):
        client = make_client(scenario, scenario.isp_a, "m6")
        request(scenario, client, scenario.urls["youtube"])
        status, record = client.local_db.lookup(scenario.urls["youtube"])
        assert status is BlockStatus.BLOCKED
        assert record.stages == [BlockType.BLOCK_PAGE]


class TestBlockedUrlFlow:
    def test_second_access_uses_local_fix_fast(self, scenario):
        client = make_client(scenario, scenario.isp_a, "b1")
        first = request(scenario, client, scenario.urls["youtube"])
        second = request(scenario, client, scenario.urls["youtube"])
        assert second.path == "https"
        assert second.plt < first.plt

    def test_probe_probability_zero_never_probes(self, scenario):
        client = make_client(
            scenario, scenario.isp_a, "b2",
            config=CSawConfig(probe_probability=0.0),
            include=["tor", "lantern"],  # no local fixes: probes possible
        )
        request(scenario, client, scenario.urls["youtube"])
        for _ in range(10):
            request(scenario, client, scenario.urls["youtube"])
        assert client.measurement.probes_launched == 0

    def test_probe_probability_one_always_probes(self, scenario):
        client = make_client(
            scenario, scenario.isp_a, "b3",
            config=CSawConfig(probe_probability=1.0),
            include=["tor", "lantern"],
        )
        request(scenario, client, scenario.urls["youtube"])
        for _ in range(5):
            request(scenario, client, scenario.urls["youtube"])
        assert client.measurement.probes_launched == 5

    def test_local_fix_skips_probe(self, scenario):
        client = make_client(
            scenario, scenario.isp_a, "b4",
            config=CSawConfig(probe_probability=1.0),
        )
        request(scenario, client, scenario.urls["youtube"])
        for _ in range(5):
            request(scenario, client, scenario.urls["youtube"])
        # https fix rides the direct path: measured by default, no probes.
        assert client.measurement.probes_launched == 0

    def test_whitelisting_detected_by_probe(self, scenario):
        client = make_client(
            scenario, scenario.isp_a, "b5",
            config=CSawConfig(probe_probability=1.0),
            include=["tor", "lantern"],
        )
        request(scenario, client, scenario.urls["youtube"])
        # The censor lifts the block (Blocked -> Unblocked churn).
        policy = scenario.world.network.ases[scenario.isp_a.asn].censor.policy
        removed = policy.remove_rules("youtube")
        assert removed == 1
        response = request(scenario, client, scenario.urls["youtube"])
        assert response.status is BlockStatus.NOT_BLOCKED
        status, _ = client.local_db.lookup(scenario.urls["youtube"])
        assert status is BlockStatus.NOT_BLOCKED
        # Restore for other tests sharing the fixture world.
        from repro.censor.actions import HttpAction, HttpVerdict
        from repro.censor.policy import Matcher, Rule

        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"youtube.com"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
                label="youtube",
            )
        )


class TestChurn:
    def test_ttl_expiry_remeasures(self, scenario):
        config = CSawConfig(record_ttl=50.0)
        client = make_client(scenario, scenario.isp_a, "c1", config=config)
        request(scenario, client, scenario.urls["small-unblocked"])
        env = scenario.world.env
        env.run(until=env.now + 100)  # let the record expire
        status, _ = client.local_db.lookup(scenario.urls["small-unblocked"])
        assert status is BlockStatus.NOT_MEASURED

    def test_unblocked_to_blocked_caught_inline(self, scenario):
        client = make_client(scenario, scenario.isp_a, "c2")
        url = "http://fresh-site.example/"
        scenario.world.web.add_site("fresh-site.example", location="us-east")
        scenario.world.web.add_page(url, size_bytes=40_000)
        first = request(scenario, client, url)
        assert first.status is BlockStatus.NOT_BLOCKED
        # The censor starts blocking it.
        from repro.censor.actions import HttpAction, HttpVerdict
        from repro.censor.policy import Matcher, Rule

        policy = scenario.world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"fresh-site.example"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
            )
        )
        second = request(scenario, client, url)
        assert second.status is BlockStatus.BLOCKED
        assert second.ok  # recovered via circumvention
        status, _ = client.local_db.lookup(url)
        assert status is BlockStatus.BLOCKED


class TestGlobalViewIntegration:
    def test_global_entry_skips_local_measurement(self, scenario):
        server = ServerDB()
        reporter = make_client(scenario, scenario.isp_a, "g1", server=server)
        consumer = make_client(scenario, scenario.isp_a, "g2", server=server)

        def flow():
            yield from reporter.install()
            yield from consumer.install()
            # Reporter discovers the blocking and posts it.
            response = yield from reporter.request(scenario.urls["youtube"])
            yield response.measurement_process
            yield from reporter.reporting.post_reports(reporter.new_ctx())
            yield from consumer.reporting.download_blocked_list(consumer.new_ctx())
            # The consumer now knows without measuring first.
            entry = consumer.global_view.lookup(scenario.urls["youtube"])
            assert entry is not None
            second = yield from consumer.request(scenario.urls["youtube"])
            yield second.measurement_process
            return second

        response = scenario.world.run_process(flow())
        assert response.ok
        assert response.status is BlockStatus.BLOCKED
        # Served via circumvention straight away (no redundant probing) —
        # and since the global entry says "block page", the cheap HTTPS
        # local fix is chosen on the very first access (regression test:
        # the shared-but-empty GlobalView must not be discarded).
        assert response.path == "https"

    def test_measurement_module_shares_client_global_view(self, scenario):
        client = make_client(scenario, scenario.isp_a, "g3")
        assert client.measurement.global_view is client.global_view
