"""Unit tests for transports not covered by the integration suites:
VPN, static-proxy fleet construction, Hold-On costs, IP-learning."""

import pytest

from repro.censor.actions import IpAction, IpVerdict
from repro.censor.policy import Matcher, Rule
from repro.circumvent import (
    HoldOnTransport,
    IpAsHostnameTransport,
    PROXY_FLEET_SPEC,
    VpnTransport,
    build_proxy_fleet,
)
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=777, with_proxy_fleet=False)


def make_ctx(scenario, isp, name):
    world = scenario.world
    client, access = world.add_client(name, [isp])
    return world.new_ctx(client, access, stream=f"tu/{name}")


class TestVpn:
    def test_vpn_tunnels_blocked_content(self, scenario):
        world = scenario.world
        endpoint = world.network.add_host("vpn-nl", "netherlands",
                                          bandwidth_bps=40e6)
        vpn = VpnTransport(endpoint)
        assert vpn.provides_anonymity
        assert vpn.uses_relay
        assert vpn.name == "vpn:vpn-nl"
        ctx = make_ctx(scenario, scenario.isp_b, "vpn-1")
        result = world.run_process(
            vpn.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert result.ok
        assert result.response.size_bytes == 360_000

    def test_vpn_endpoint_blacklisted(self, scenario):
        world = scenario.world
        endpoint = world.network.add_host("vpn-blocked", "netherlands")
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(matcher=Matcher(ips={endpoint.ip}),
                 ip=IpVerdict(IpAction.DROP), label="vpn-kill")
        )
        vpn = VpnTransport(endpoint)
        ctx = make_ctx(scenario, scenario.isp_a, "vpn-2")
        result = world.run_process(
            vpn.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert result.failed
        assert result.failure_stage == "tcp"
        policy.remove_rules("vpn-kill")

    def test_vpn_slower_than_plain_relay_setup(self, scenario):
        """The VPN handshake overhead (1.5 RTT extra) shows up."""
        world = scenario.world
        host_a = world.network.add_host("vpn-fast", "netherlands",
                                        jitter_sigma=0.0)
        host_b = world.network.add_host("proxy-fast", "netherlands",
                                        jitter_sigma=0.0)
        from repro.circumvent import StaticProxyTransport

        vpn = VpnTransport(host_a)
        proxy = StaticProxyTransport(host_b)
        ctx = make_ctx(scenario, scenario.isp_clean, "vpn-3")
        url = scenario.urls["small-unblocked"]
        vpn_result = world.run_process(vpn.fetch(world, ctx, url))
        proxy_result = world.run_process(proxy.fetch(world, ctx, url))
        assert vpn_result.ok and proxy_result.ok
        assert vpn_result.elapsed > proxy_result.elapsed


class TestProxyFleet:
    def test_fleet_matches_spec(self, scenario):
        fleet = build_proxy_fleet(scenario.world)
        assert len(fleet) == len(PROXY_FLEET_SPEC)
        labels = {t.proxy_host.tags["label"] for t in fleet}
        assert {"UK", "Japan", "Germany-1", "US-3"} <= labels

    def test_congested_proxies_carry_jitter(self, scenario):
        fleet = build_proxy_fleet(
            scenario.world,
            specs=None,
        )
        by_label = {t.proxy_host.tags["label"]: t.proxy_host for t in fleet}
        assert by_label["Germany-1"].jitter_sigma > by_label["Germany-2"].jitter_sigma
        assert by_label["UK"].extra_rtt > by_label["Netherlands"].extra_rtt


class TestHoldOnCosts:
    def test_hold_on_adds_margin_on_clean_resolution(self, scenario):
        """Quantified: Hold-On pays ~the configured margin per lookup."""
        world = scenario.world
        margin = world.dns_config.hold_on_margin
        from repro.simnet.dns import resolve

        ctx = make_ctx(scenario, scenario.isp_clean, "ho-1")
        t0 = world.env.now
        world.run_process(
            resolve(world.env, world.network, ctx, "www.youtube.com",
                    world.public_resolver, world.dns_config, hold_on=False)
        )
        plain = world.env.now - t0
        t1 = world.env.now
        world.run_process(
            resolve(world.env, world.network, ctx, "www.youtube.com",
                    world.public_resolver, world.dns_config, hold_on=True)
        )
        held = world.env.now - t1
        assert held >= plain  # jitter aside, the margin dominates
        assert held - plain <= margin + 0.3


class TestIpLearning:
    def test_learned_ip_overrides_authoritative(self, scenario):
        transport = IpAsHostnameTransport()
        transport.learn_ip("www.youtube.com", "100.200.200.200")
        assert (
            transport._ip_for(scenario.world, "www.youtube.com")
            == "100.200.200.200"
        )

    def test_unknown_host_unavailable(self, scenario):
        transport = IpAsHostnameTransport()
        assert not transport.available_for(
            scenario.world, "http://totally-unknown.example/"
        )
