"""Behavioral fingerprint for the fleet reporter path (plane refactor).

The measurement-plane refactor (ISSUE 10) rewires ``core/fleet.py``'s
wave/report path through the :mod:`repro.planes` abstraction, with the
in-browser C-Saw plane as its first implementation.  The contract is
*bit-identical behavior under the same seed* for the single-plane case:
the fingerprint below was captured from the pre-refactor pipeline
(commit efd74f9) into ``tests/data/plane_golden.json`` and
``tests/test_planes.py`` re-computes it against the plane-backed path.

The fingerprint exercises the fleet storm end to end — per-client record
arrays (versions, pull schedules as exact float reprs, byte/row costs),
reporter identities and detection times, server-side global_DB rows,
per-key voting statistics, serve counters, and the metrics summary — for
both sweep modes, so any drift in RNG draw order, registration order,
report batching, or convergence accounting shows up as a diff.

Floats travel as ``repr`` strings so JSON round-trips keep full
precision (bit-identical means bit-identical).  The session-level
reporter path (``ReportingService`` / ``CSawClient``) is already pinned
by ``tests/data/scenario_golden.json``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "plane_golden.json")


def _freeze(value: Any) -> Any:
    """Floats -> repr strings, recursively (exact JSON round-trip)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {
            str(k): _freeze(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    return value


def storm_fingerprint(sweep_mode: str, seed: int = 7) -> Dict[str, Any]:
    """One small fleet storm, captured down to every record array."""
    from repro.core.fleet import ClientCohort
    from repro.core.globaldb import ServerDB
    from repro.simnet.engine import Environment

    server = ServerDB(entry_ttl=None)
    env = Environment()
    cohort = ClientCohort(
        server,
        asns=[41000 + i for i in range(4)],
        clients_per_as=60,
        seed=seed,
        reporter_fraction=0.05,
        pull_interval=600.0,
        sweep_mode=sweep_mode,
    )

    def driver():
        yield env.timeout(300.0)
        cohort.start_wave(env.now, urls_per_as=5)

    env.process(driver())
    env.process(cohort.run(env, 300.0 + 2.0 * 600.0 + cohort.tick))
    env.run()
    metrics = cohort.finalize()

    shards = []
    for st in cohort.shards:
        shards.append({
            "asn": st.asn,
            "versions": list(st.versions),
            "next_pull_at": [repr(x) for x in st.next_pull_at],
            "bytes_received": list(st.bytes_received),
            "rows_received": list(st.rows_received),
            "reporter_ix": sorted(st.reporter_ix),
            "reporter_uuids": sorted(st.reporter_uuids),
            "report_at": [repr(x) for x in st.report_at],
            "pending": list(st.pending),
            "target_version": st.target_version,
            "converged_at": repr(st.converged_at),
        })

    rows = sorted(
        [
            entry.url,
            entry.asn,
            [s.value for s in entry.stages],
            repr(entry.measured_at),
            repr(entry.posted_at),
            repr(entry.first_measured_at),
            entry.last_uuid,
        ]
        for entry in server.all_entries()
    )
    votes = sorted(
        [
            entry.url,
            entry.asn,
            repr(server.voting.stats(entry.url, entry.asn).votes),
            server.voting.stats(entry.url, entry.asn).reporters,
        ]
        for entry in server.all_entries()
    )
    return {
        "summary": _freeze(metrics.summary()),
        "convergence_by_as": _freeze(metrics.convergence_by_as),
        "pending_by_as": _freeze(metrics.pending_by_as),
        "shards": shards,
        "server_rows": rows,
        "vote_stats": votes,
        "serve_counters": [
            server.full_syncs_served,
            server.delta_syncs_served,
            server.update_count,
            server.client_count,
        ],
    }


def all_fingerprints() -> Dict[str, Any]:
    return {
        "grouped": storm_fingerprint("grouped"),
        "spec": storm_fingerprint("spec"),
    }


def load_golden() -> Dict[str, Any]:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(all_fingerprints(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
