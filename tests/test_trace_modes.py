"""Trace modes must never perturb measurements.

``TraceMode`` (off / sampled / ring / full) only changes what the trace
bus *records* — verdicts, PLTs, local_DB state, and the event schedule
must be bit-identical across modes for the same seed.  Sampling draws
come from a dedicated RNG stream precisely so this holds.
"""

import pytest

from repro.core import CSawClient, TraceMode
from repro.core.config import CSawConfig
from repro.core.trace import DISABLED_TRACE
from repro.workloads.scenarios import pakistan_case_study

MODES = ("off", "sampled", "ring", "full")


def run_storm(trace_mode, rounds=6, sample_rate=0.5):
    """The same multi-URL request storm under one trace mode; returns
    everything a mode could possibly perturb."""
    scenario = pakistan_case_study(seed=29, with_proxy_fleet=False)
    world = scenario.world
    client = CSawClient(
        world,
        "modes",
        [scenario.isp_a],
        transports=scenario.make_transports("modes"),
        config=CSawConfig(
            probe_probability=0.0,
            trace_mode=trace_mode,
            trace_sample_rate=sample_rate,
            trace_ring_size=8,
        ),
    )
    urls = [
        scenario.urls["small-unblocked"],
        scenario.urls["youtube"],
        scenario.urls["table5/tcp-ip"],
    ]
    responses = []

    def storm():
        for _ in range(rounds):
            for url in urls:
                response = yield from client.request(url)
                yield response.measurement_process
                responses.append(response)
        return len(responses)

    world.run_process(storm())
    verdicts = [
        (r.url, r.status, tuple(r.stages), r.plt, r.effective_plt, r.path)
        for r in responses
    ]
    local_db = [
        (rec.url, rec.status, tuple(rec.stages), rec.measured_at)
        for rec in client.local_db.records()
    ]
    return {
        "verdicts": verdicts,
        "local_db": local_db,
        "final_time": world.env.now,
        "stats": client.stats(),
        "responses": responses,
        "module": client.measurement,
    }


class TestModeInvariance:
    """Only the trace payload may differ between modes."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {mode: run_storm(mode) for mode in MODES}

    def test_verdicts_bit_identical(self, runs):
        baseline = runs["full"]["verdicts"]
        for mode in MODES:
            assert runs[mode]["verdicts"] == baseline, mode

    def test_local_db_bit_identical(self, runs):
        baseline = runs["full"]["local_db"]
        for mode in MODES:
            assert runs[mode]["local_db"] == baseline, mode

    def test_schedule_bit_identical(self, runs):
        baseline = runs["full"]["final_time"]
        for mode in MODES:
            assert runs[mode]["final_time"] == baseline, mode

    def test_non_trace_stats_bit_identical(self, runs):
        """Every stats field except the trace-derived PLT breakdown."""
        def scrub(stats):
            return {
                k: v for k, v in stats.items() if k != "plt_breakdown"
            }

        baseline = scrub(runs["full"]["stats"])
        for mode in MODES:
            assert scrub(runs[mode]["stats"]) == baseline, mode


class TestModePayloads:
    """What each mode is allowed to record."""

    def test_off_records_nothing(self):
        run = run_storm("off")
        assert run["stats"]["plt_breakdown"] == {}
        assert run["module"].sessions_traced == 0
        for response in run["responses"]:
            assert response.trace is DISABLED_TRACE
            assert len(response.trace) == 0

    def test_full_records_everything(self):
        run = run_storm("full")
        assert run["module"].sessions_traced == len(run["responses"])
        assert run["stats"]["plt_breakdown"]
        for response in run["responses"]:
            assert len(response.trace) > 0

    def test_ring_bounds_every_trace(self):
        run = run_storm("ring")
        assert run["module"].sessions_traced == len(run["responses"])
        for response in run["responses"]:
            assert 0 < len(response.trace) <= 8

    def test_sampled_records_a_subset_scaled(self):
        run = run_storm("sampled", sample_rate=0.5)
        traced = run["module"].sessions_traced
        n = len(run["responses"])
        assert 0 < traced < n
        disabled = [r for r in run["responses"] if not r.trace.enabled]
        assert len(disabled) == n - traced
        # Sampled breakdown estimates the full deployment: each traced
        # session's durations are scaled by 1/p, so the total stays in
        # the same ballpark as the full-mode storm (same seed, same
        # schedule — only which sessions record differs).
        full = run_storm("full")
        sampled_total = sum(run["stats"]["plt_breakdown"].values())
        full_total = sum(full["stats"]["plt_breakdown"].values())
        assert sampled_total == pytest.approx(full_total, rel=0.75)

    def test_sampled_scale_is_inverse_rate(self):
        run = run_storm("sampled", sample_rate=0.25)
        assert run["module"].trace_scale == pytest.approx(4.0)


def test_parse_rejects_unknown_mode():
    with pytest.raises(ValueError):
        TraceMode.parse("verbose")
    with pytest.raises(ValueError):
        CSawConfig(trace_mode="verbose")
