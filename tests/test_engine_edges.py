"""Edge-case tests for the event kernel beyond the happy paths."""

import pytest

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


class TestEventFailure:
    def test_fail_delivers_exception_to_waiter(self):
        env = Environment()
        gate = env.event()

        def waiter():
            try:
                yield gate
            except RuntimeError as exc:
                return f"caught:{exc}"

        proc = env.process(waiter())

        def failer():
            yield env.timeout(1)
            gate.fail(RuntimeError("boom"))

        env.process(failer())
        assert env.run(until=proc) == "caught:boom"

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_unwaited_failed_event_raises_at_step(self):
        env = Environment()
        gate = env.event()
        gate.fail(ValueError("lonely failure"))
        with pytest.raises(ValueError, match="lonely"):
            env.run()

    def test_any_of_fails_when_child_fails_first(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise KeyError("first")

        def slow():
            yield env.timeout(10)

        def racer():
            a = env.process(failing())
            b = env.process(slow())
            try:
                yield env.any_of([a, b])
            except KeyError:
                b.interrupt()
                return "condition-failed"

        assert env.run(until=env.process(racer())) == "condition-failed"

    def test_all_of_fails_fast_on_child_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise ValueError("dead")

        def slow():
            yield env.timeout(50)
            return "slow-done"

        def joiner():
            a = env.process(failing())
            b = env.process(slow())
            try:
                yield env.all_of([a, b])
            except ValueError:
                return env.now

        # The barrier fails at t=1, not t=50.
        assert env.run(until=env.process(joiner())) == 1


class TestInterruptEdges:
    def test_interrupt_before_first_yield_is_delivered(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(10)
            except Interrupt:
                log.append("interrupted")

        proc = env.process(sleeper())
        proc.interrupt("immediately")
        env.run()
        assert log == ["interrupted"]

    def test_double_interrupt_is_safe(self):
        env = Environment()

        def sleeper():
            try:
                yield env.timeout(10)
            except Interrupt:
                return "once"

        proc = env.process(sleeper())
        proc.interrupt()
        proc.interrupt()
        env.run()
        assert proc.value == "once"

    def test_interrupted_process_can_keep_working(self):
        env = Environment()

        def resilient():
            total = 0.0
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)  # continues after the interrupt
            return env.now

        def canceller(victim):
            yield env.timeout(2)
            victim.interrupt()

        proc = env.process(resilient())
        env.process(canceller(proc))
        env.run()
        assert proc.value == pytest.approx(7)


class TestEnvironmentEdges:
    def test_peek_empty_queue(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_run_until_number_advances_clock_exactly(self):
        env = Environment()
        env.run(until=42.5)
        assert env.now == 42.5

    def test_event_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value
        with pytest.raises(SimulationError):
            _ = env.event().ok

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42  # type: ignore[misc]

        env.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_condition_spanning_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        ev_b = env_b.event()
        with pytest.raises(SimulationError):
            AnyOf(env_a, [ev_b])

    def test_initial_time_offset(self):
        env = Environment(initial_time=100.0)
        done = []

        def proc():
            yield env.timeout(5)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [105.0]
