"""Tests for the circumvention transports against censoring ISPs."""

import pytest

from repro.censor.actions import IpAction, IpVerdict, TlsAction, TlsVerdict
from repro.censor.policy import Matcher, Rule
from repro.circumvent import (
    DirectTransport,
    DomainFrontingTransport,
    HttpsTransport,
    IpAsHostnameTransport,
    LanternSystem,
    PublicDnsTransport,
)
from repro.workloads.scenarios import (
    FRONT,
    PORN_SITE,
    YOUTUBE,
    pakistan_case_study,
)


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=33, with_proxy_fleet=False)


def make_ctx(scenario, isp, name):
    world = scenario.world
    client, access = world.add_client(name, [isp])
    return world.new_ctx(client, access, stream=f"t/{name}")


def fetch(scenario, transport, ctx, url):
    world = scenario.world
    return world.run_process(transport.fetch(world, ctx, url))


class TestDirect:
    def test_unblocked_succeeds(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "d1")
        result = fetch(
            scenario, DirectTransport(), ctx, scenario.urls["small-unblocked"]
        )
        assert result.ok
        assert result.response.size_bytes == 95_000

    def test_blocked_gets_blockpage_via_redirect(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "d2")
        result = fetch(scenario, DirectTransport(), ctx, scenario.urls["youtube"])
        # The fetch "succeeds" — with the censor's block page: the injected
        # 302 sits in the redirect chain, the final 200 is the block page.
        assert result.ok
        assert any(r.injected for r in result.redirects)
        assert result.response.size_bytes < 5_000

    def test_multistage_block_fails(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_b, "d3")
        result = fetch(scenario, DirectTransport(), ctx, scenario.urls["youtube"])
        # The forged DNS answer points into private space with no listener:
        # a naive client stalls out in the TCP handshake.
        assert result.failed
        assert result.failure_stage == "tcp"


class TestLocalFixes:
    def test_https_defeats_http_blocking(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "h1")
        result = fetch(scenario, HttpsTransport(), ctx, scenario.urls["youtube"])
        assert result.ok
        assert not result.response.injected
        assert result.response.size_bytes == 360_000

    def test_https_fails_on_isp_b(self, scenario):
        # ISP-B tampers with DNS before TLS ever starts, so the HTTPS fix
        # dies in the handshake to the forged address.
        ctx = make_ctx(scenario, scenario.isp_b, "h2")
        result = fetch(scenario, HttpsTransport(), ctx, scenario.urls["youtube"])
        assert result.failed
        assert result.failure_stage == "tcp"

    def test_https_fix_blocked_by_pure_sni_filter(self, scenario):
        # With honest DNS but an SNI filter, the HTTPS fix dies at TLS.
        world = scenario.world
        world.web.add_site("sni-blocked.example", location="us-east")
        world.web.add_page("http://sni-blocked.example/", size_bytes=10_000)
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"sni-blocked.example"}),
                tls=TlsVerdict(TlsAction.DROP),
            )
        )
        ctx = make_ctx(scenario, scenario.isp_a, "h3")
        result = fetch(
            scenario, HttpsTransport(), ctx, "http://sni-blocked.example/"
        )
        assert result.failed
        assert result.failure_stage == "tls"

    def test_public_dns_defeats_resolver_tampering(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_b, "p1")
        # ISP-B redirects YouTube DNS but also drops HTTP: public DNS alone
        # fixes resolution yet the GET still dies -> combined failure.
        result = fetch(
            scenario, PublicDnsTransport(), ctx, scenario.urls["youtube"]
        )
        assert result.failed
        assert result.failure_stage == "http"

    def test_fronting_defeats_multistage(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_b, "f1")
        transport = DomainFrontingTransport(FRONT)
        assert transport.available_for(scenario.world, scenario.urls["youtube"])
        result = fetch(scenario, transport, ctx, scenario.urls["youtube"])
        assert result.ok
        assert result.response.size_bytes == 360_000

    def test_fronting_unavailable_without_backend_support(self, scenario):
        transport = DomainFrontingTransport(FRONT)
        assert not transport.available_for(
            scenario.world, scenario.urls["small-unblocked"]
        )

    def test_ip_as_hostname_defeats_keyword_filter(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "i1")
        transport = IpAsHostnameTransport()
        result = fetch(scenario, transport, ctx, scenario.urls["porn"])
        assert result.ok
        assert result.response.size_bytes == 50_000

    def test_ip_as_hostname_fails_against_ip_blacklist(self, scenario):
        world = scenario.world
        porn_ip = world.network.hosts_by_name[PORN_SITE].ip
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(matcher=Matcher(ips={porn_ip}), ip=IpVerdict(IpAction.DROP))
        )
        ctx = make_ctx(scenario, scenario.isp_a, "i2")
        result = fetch(scenario, IpAsHostnameTransport(), ctx, scenario.urls["porn"])
        assert result.failed
        assert result.failure_stage == "tcp"

    def test_learned_ip_is_used(self, scenario):
        transport = IpAsHostnameTransport()
        transport.learn_ip("unknown-site.example", "100.1.2.3")
        assert transport.available_for(
            scenario.world, "http://unknown-site.example/"
        )


class TestRelays:
    def test_static_proxy_fetches_blocked_page(self):
        scenario = pakistan_case_study(seed=34, with_proxy_fleet=True)
        ctx = make_ctx(scenario, scenario.isp_b, "sp1")
        proxy = scenario.proxy_transports[1]  # Netherlands
        result = fetch(scenario, proxy, ctx, scenario.urls["youtube"])
        assert result.ok
        assert result.response.size_bytes == 360_000

    def test_tor_fetches_blocked_page(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_b, "t1")
        tor = scenario.tor_transport("t1")
        result = fetch(scenario, tor, ctx, scenario.urls["youtube"])
        assert result.ok

    def test_tor_slower_than_direct(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "t2")
        direct = fetch(
            scenario, DirectTransport(), ctx, scenario.urls["small-unblocked"]
        )
        tor = fetch(
            scenario,
            scenario.tor_transport("t2"),
            ctx,
            scenario.urls["small-unblocked"],
        )
        assert tor.ok and direct.ok
        assert tor.elapsed > direct.elapsed

    def test_tor_circuit_rotation(self, scenario):
        world = scenario.world
        client = scenario.tor.client("rotation-test", rotation_period=600)
        first, fresh1 = client.circuit(world.env.now)
        again, fresh2 = client.circuit(world.env.now + 10)
        assert fresh1 and not fresh2
        assert again is first
        rotated, fresh3 = client.circuit(world.env.now + 700)
        assert fresh3
        assert rotated is not first

    def test_tor_exit_location_pinning(self, scenario):
        client = scenario.tor.client("pin-test", exit_location="germany")
        has_german_exit = any(
            r.location == "germany" for r in scenario.tor.exits
        )
        circuit = client.new_circuit(0.0)
        if has_german_exit:
            assert circuit.exit.location == "germany"

    def test_tor_blocked_entry_fails(self, scenario):
        world = scenario.world
        client = scenario.tor.client("blocked-entry")
        circuit = client.new_circuit(0.0)
        policy = world.network.ases[scenario.isp_b.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(ips={circuit.entry.host.ip}),
                ip=IpVerdict(IpAction.RST),
            )
        )
        from repro.circumvent import TorTransport

        transport = TorTransport(client)
        ctx = make_ctx(scenario, scenario.isp_b, "t3")
        result = fetch(scenario, transport, ctx, scenario.urls["youtube"])
        assert result.failed
        assert result.failure_stage == "tcp"

    def test_lantern_transport_relays(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_b, "l1")
        lantern = scenario.lantern_transport("l1")
        result = fetch(scenario, lantern, ctx, scenario.urls["youtube"])
        assert result.ok

    def test_lantern_system_caches_blocked_hosts(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "l2")
        system = LanternSystem(scenario.lantern_transport("l2"))
        world = scenario.world
        first = world.run_process(
            system.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert first.ok
        assert system._blocked_hosts.get(YOUTUBE)
        t0 = world.env.now
        second = world.run_process(
            system.fetch(world, ctx, scenario.urls["youtube"])
        )
        assert second.ok
        assert second.transport == "lantern"  # straight to the relay

    def test_lantern_system_direct_when_unblocked(self, scenario):
        ctx = make_ctx(scenario, scenario.isp_a, "l3")
        system = LanternSystem(scenario.lantern_transport("l3"))
        result = scenario.world.run_process(
            system.fetch(scenario.world, ctx, scenario.urls["small-unblocked"])
        )
        assert result.ok
        assert result.transport == "lantern-direct"
