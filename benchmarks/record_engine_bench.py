"""Record kernel/policy throughput numbers to BENCH_engine.json.

Times the same workloads as ``bench_engine_performance.py`` with a plain
``perf_counter`` harness (no pytest-benchmark dependency) so CI can track
the perf trajectory across PRs.  Usage::

    PYTHONPATH=src python benchmarks/record_engine_bench.py [--label after]

The script merges into the repo-root ``BENCH_engine.json``: each label
("seed-baseline", "after", ...) maps to the best-of-N wall-clock seconds
per workload, so before/after history accumulates rather than being
overwritten.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.censor.actions import DnsAction
from repro.simnet.engine import Environment

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"


def run_timer_storm(n_processes=200, ticks=50):
    env = Environment()

    def ticker(delay):
        for _ in range(ticks):
            yield env.timeout(delay)

    for index in range(n_processes):
        env.process(ticker(0.1 + index * 0.001))
    env.run()
    return env.now


def run_spawn_join_storm(width=40, depth=3):
    env = Environment()

    def node(level):
        if level == 0:
            yield env.timeout(0.01)
            return 1
        children = [env.process(node(level - 1)) for _ in range(3)]
        gathered = yield env.all_of(children)
        return sum(gathered.values())

    roots = [env.process(node(depth)) for _ in range(width)]
    env.run()
    return sum(root.value for root in roots)


def run_policy_lookups():
    from repro.censor.policy import CensorPolicy, Matcher, Rule
    from repro.censor.actions import DnsVerdict

    policy = CensorPolicy(name="big")
    domains = {f"blocked{i}.example.com" for i in range(500)}
    policy.add_rule(
        Rule(matcher=Matcher(domains=domains), dns=DnsVerdict(DnsAction.NXDOMAIN))
    )
    hits = 0
    for i in range(2000):
        if policy.on_dns_query(f"www.blocked{i % 600}.example.com").action \
                is DnsAction.NXDOMAIN:
            hits += 1
    assert hits == 3 * 500 + 200
    return hits


def _build_multirule_policy(n_rules=200):
    from repro.censor.policy import CensorPolicy, Matcher, Rule
    from repro.censor.actions import DnsVerdict, HttpVerdict, HttpAction

    policy = CensorPolicy(name="multirule")
    for i in range(n_rules):
        policy.add_rule(
            Rule(
                matcher=Matcher(
                    domains={f"site{i}.example.com"},
                    keywords={f"badword{i}"},
                ),
                dns=DnsVerdict(DnsAction.NXDOMAIN),
                http=HttpVerdict(HttpAction.DROP),
                label=f"rule{i}",
            )
        )
    return policy


def _multirule_queries(policy, hook_dns, hook_http):
    """2000 DNS + 2000 HTTP lookups; most miss, the tail hits late rules."""
    hits = 0
    for i in range(2000):
        qname = f"www.site{i % 250}.example.com"
        if hook_dns(qname).action is DnsAction.NXDOMAIN:
            hits += 1
        host, path = f"cdn{i}.example.net", f"/page/{i % 97}"
        if i % 10 == 0:
            path = f"/stream/badword{i % 250}/x"
        from repro.censor.actions import HttpAction
        if hook_http(host, path).action is HttpAction.DROP:
            hits += 1
    return hits


def run_policy_multirule_compiled(_policy=_build_multirule_policy()):
    compiled = _policy.compiled()
    hits = _multirule_queries(
        _policy, compiled.on_dns_query, compiled.on_http_request
    )
    assert hits == 1600 + 200
    return hits


def run_policy_multirule_linear(_policy=_build_multirule_policy()):
    hits = _multirule_queries(
        _policy, _policy.linear_on_dns_query, _policy.linear_on_http_request
    )
    assert hits == 1600 + 200
    return hits


WORKLOADS = {
    "kernel_timer_storm": run_timer_storm,
    "kernel_spawn_join_storm": run_spawn_join_storm,
    "policy_dns_lookups": run_policy_lookups,
    "policy_multirule_compiled": run_policy_multirule_compiled,
    "policy_multirule_linear": run_policy_multirule_linear,
}


def best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after",
                        help="key to record under (e.g. seed-baseline, after)")
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args()

    timings = {name: best_of(fn, args.rounds) for name, fn in WORKLOADS.items()}

    history = {}
    if OUT.exists():
        history = json.loads(OUT.read_text())
    history[args.label] = {
        "seconds": timings,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    baseline = history.get("seed-baseline")
    if baseline and args.label != "seed-baseline":
        history[args.label]["speedup_vs_seed"] = {
            name: round(baseline["seconds"][name] / timings[name], 2)
            for name in timings
            if name in baseline["seconds"]
        }
    OUT.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    for name, seconds in timings.items():
        print(f"{name}: {seconds * 1000:.2f} ms")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
