"""Record kernel/policy throughput numbers to BENCH_engine.json.

Times the same workloads as ``bench_engine_performance.py`` with a plain
``perf_counter`` harness (no pytest-benchmark dependency) so CI can track
the perf trajectory across PRs.  Usage::

    PYTHONPATH=src python benchmarks/record_engine_bench.py [--label after]

The script merges into the repo-root ``BENCH_engine.json``: each label
("seed-baseline", "after", ...) maps to the best-of-N wall-clock seconds
per workload, so before/after history accumulates rather than being
overwritten.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.censor.actions import DnsAction
from repro.simnet.engine import Environment

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"


def run_timer_storm(n_processes=200, ticks=50):
    env = Environment()

    def ticker(delay):
        for _ in range(ticks):
            yield env.timeout(delay)

    for index in range(n_processes):
        env.process(ticker(0.1 + index * 0.001))
    env.run()
    return env.now


def run_spawn_join_storm(width=40, depth=3):
    env = Environment()

    def node(level):
        if level == 0:
            yield env.timeout(0.01)
            return 1
        children = [env.process(node(level - 1)) for _ in range(3)]
        gathered = yield env.all_of(children)
        return sum(gathered.values())

    roots = [env.process(node(depth)) for _ in range(width)]
    env.run()
    return sum(root.value for root in roots)


def run_policy_lookups():
    from repro.censor.policy import CensorPolicy, Matcher, Rule
    from repro.censor.actions import DnsVerdict

    policy = CensorPolicy(name="big")
    domains = {f"blocked{i}.example.com" for i in range(500)}
    policy.add_rule(
        Rule(matcher=Matcher(domains=domains), dns=DnsVerdict(DnsAction.NXDOMAIN))
    )
    hits = 0
    for i in range(2000):
        if policy.on_dns_query(f"www.blocked{i % 600}.example.com").action \
                is DnsAction.NXDOMAIN:
            hits += 1
    assert hits == 3 * 500 + 200
    return hits


def _build_multirule_policy(n_rules=200):
    from repro.censor.policy import CensorPolicy, Matcher, Rule
    from repro.censor.actions import DnsVerdict, HttpVerdict, HttpAction

    policy = CensorPolicy(name="multirule")
    for i in range(n_rules):
        policy.add_rule(
            Rule(
                matcher=Matcher(
                    domains={f"site{i}.example.com"},
                    keywords={f"badword{i}"},
                ),
                dns=DnsVerdict(DnsAction.NXDOMAIN),
                http=HttpVerdict(HttpAction.DROP),
                label=f"rule{i}",
            )
        )
    return policy


def _multirule_queries(policy, hook_dns, hook_http):
    """2000 DNS + 2000 HTTP lookups; most miss, the tail hits late rules."""
    hits = 0
    for i in range(2000):
        qname = f"www.site{i % 250}.example.com"
        if hook_dns(qname).action is DnsAction.NXDOMAIN:
            hits += 1
        host, path = f"cdn{i}.example.net", f"/page/{i % 97}"
        if i % 10 == 0:
            path = f"/stream/badword{i % 250}/x"
        from repro.censor.actions import HttpAction
        if hook_http(host, path).action is HttpAction.DROP:
            hits += 1
    return hits


def run_policy_multirule_compiled(_policy=_build_multirule_policy()):
    compiled = _policy.compiled()
    hits = _multirule_queries(
        _policy, compiled.on_dns_query, compiled.on_http_request
    )
    assert hits == 1600 + 200
    return hits


def check_policy_multirule_linear_smoke(_policy=_build_multirule_policy()):
    """Untimed correctness gate: the linear reference path must agree with
    :class:`CompiledPolicy` verdict-for-verdict on a smoke-sized query set.

    The full linear sweep (~1.6 s/run, x5 rounds) used to dominate this
    script's runtime while measuring a path nothing ships on; the linear
    matcher is the executable spec, so what CI needs is agreement, not a
    throughput number.
    """
    compiled = _policy.compiled()
    for i in range(120):
        qname = f"www.site{i % 250}.example.com"
        assert (
            _policy.linear_on_dns_query(qname).action
            is compiled.on_dns_query(qname).action
        ), qname
        host, path = f"cdn{i}.example.net", f"/page/{i % 97}"
        if i % 10 == 0:
            path = f"/stream/badword{i % 250}/x"
        assert (
            _policy.linear_on_http_request(host, path).action
            is compiled.on_http_request(host, path).action
        ), (host, path)


_PULL_STORM_CACHE = {}


def _build_pull_storm_server(n_entries=100_000, n_ases=50, urls_per_client=50):
    """A ServerDB holding ``n_entries`` blocked rows spread over ``n_ases``.

    2 000 registered clients each vouch for 50 URLs on their own AS, the
    shape a large deployment converges to.  Built once and cached: the
    benchmark times the pull path, not table construction.
    """
    from repro.core.globaldb import ReportItem, ServerDB
    from repro.core.records import BlockType

    args = (n_entries, n_ases, urls_per_client)
    server = _PULL_STORM_CACHE.get(args)
    if server is not None:
        return server
    server = ServerDB(entry_ttl=None)
    n_clients = n_entries // urls_per_client
    for index in range(n_clients):
        uuid = server.register(now=float(index))
        asn = 30000 + index % n_ases
        items = [
            ReportItem(
                url=f"http://as{asn}.site{index}-{k}.example.com/",
                asn=asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=1.0,
            )
            for k in range(urls_per_client)
        ]
        server.post_update(uuid, items, now=2.0)
    _PULL_STORM_CACHE[args] = server
    return server


def run_globaldb_pull_storm(n_pulls=100, n_ases=50):
    """100 client pulls against a 100k-entry global_DB (the §5 sync path)."""
    server = _build_pull_storm_server(n_ases=n_ases)
    total = 0
    for index in range(n_pulls):
        asn = 30000 + index % n_ases
        total += len(server.blocked_for_as(asn, now=10.0, min_reporters=1))
    assert total == n_pulls * (100_000 // n_ases)
    return total


def run_voting_update_storm(n_clients=10_000, n_keys=500, reports_each=10):
    """10k clients upload vouch sets, each upload followed by a confidence
    check, then five full stats sweeps (the server-side voting hot path)."""
    from repro.core.voting import VotingLedger

    ledger = VotingLedger()
    keys = [
        (f"http://u{index}.example.com/", 30000 + index % 16)
        for index in range(n_keys)
    ]
    checked = 0.0
    for index in range(n_clients):
        mine = [
            keys[(index * 13 + j * 7) % n_keys] for j in range(reports_each)
        ]
        ledger.add_client_reports(f"client-{index}", mine)
        checked += ledger.stats(*keys[index % n_keys]).votes
    for _ in range(5):
        for key in keys:
            checked += ledger.stats(*key).votes
    return checked


def run_session_request_storm(rounds=40, trace_mode=None):
    """The end-to-end request path: measurement flows, detection stages,
    circumvention, and (post-refactor) session trace emission.  The
    ``before-session``/``after-session`` label pair records what full
    per-request tracing costs on this pure-python path (recorded
    interleaved — this box drifts by tens of percent across minutes, so
    back-to-back label recordings are not comparable).  With
    ``trace_mode="off"`` the same storm runs on the single-predicate
    disabled-trace path (the ``session_request_storm_notrace``
    workload)."""
    from repro.core import CSawClient
    from repro.core.config import CSawConfig
    from repro.workloads.scenarios import pakistan_case_study

    config_kwargs = {"probe_probability": 0.0}
    if trace_mode is not None:
        config_kwargs["trace_mode"] = trace_mode
    scenario = pakistan_case_study(seed=5, with_proxy_fleet=False)
    world = scenario.world
    client = CSawClient(
        world,
        "bench",
        [scenario.isp_a],
        transports=scenario.make_transports("bench"),
        config=CSawConfig(**config_kwargs),
    )
    urls = [
        scenario.urls["small-unblocked"],
        scenario.urls["youtube"],
        scenario.urls["table5/tcp-ip"],
    ]
    served = 0

    def storm():
        count = 0
        for index in range(rounds):
            for url in urls:
                response = yield from client.request(url)
                yield response.measurement_process
                count += 1
        return count

    served = world.run_process(storm())
    assert served == rounds * len(urls)
    return served


def run_session_request_storm_notrace(rounds=40):
    """The same 120-request storm with ``TraceMode.OFF`` — what a
    deployment that never looks at traces pays for the session layer."""
    return run_session_request_storm(rounds=rounds, trace_mode="off")


def run_fleet_report_storm():
    """100k cohort clients (50 ASes x 2000) absorbing a blocking wave:
    reporter posts, staggered batched delta pulls, convergence tracking.
    The whole storm runs through ``ClientCohort`` record arrays."""
    from repro.core.fleet import run_fleet_storm

    metrics = run_fleet_storm(seed=0, n_ases=50, clients_per_as=2000)
    assert metrics.n_clients == 100_000
    assert not any(v < 0 for v in metrics.convergence_by_as.values())
    return metrics


def run_fleet_report_storm_1m():
    """One million cohort clients (100 ASes x 10 000) through the same
    wave + batched-delta-pull storm — the ICLab-scale workload the
    group-applied sweep (DESIGN.md §11) exists for.  Every client still
    pulls ~2.5 times and every AS must converge on the wave."""
    from repro.core.fleet import run_fleet_storm

    metrics = run_fleet_storm(seed=0, n_ases=100, clients_per_as=10_000)
    assert metrics.n_clients == 1_000_000
    assert metrics.reports_absorbed == 200_000
    assert not any(v < 0 for v in metrics.convergence_by_as.values())
    assert metrics.pulls_served >= 2 * metrics.n_clients
    return metrics


def run_plane_mix_storm():
    """The 100k storm with a three-plane mix (C-Saw + Encore + generated
    probe lists) instead of the single C-Saw plane.  Same fleet shape as
    ``fleet_report_storm`` and the same combined 1% reporter mass — the
    mix splits it 0.4/0.5/0.1 — so what's measured is the overhead of
    the plane *machinery*: per-plane RNG streams, per-reporter Encore
    item draws, per-plane convergence curves, and the activated
    per-plane voting histograms on the server (report volume would
    otherwise dominate and the ratio would just measure reporter count).
    Guarded at <=1.5x the single-plane storm in ``bench_fleet_storm.py``."""
    from repro.core.fleet import run_fleet_storm

    metrics = run_fleet_storm(
        seed=0,
        n_ases=50,
        clients_per_as=2000,
        planes=[
            {"kind": "csaw", "fraction": 0.004},
            {"kind": "encore", "fraction": 0.005, "miss_rate": 0.2},
            {"kind": "problist", "fraction": 0.001, "coverage": 0.9},
        ],
    )
    assert metrics.n_clients == 100_000
    assert set(metrics.reports_by_plane) == {"csaw", "encore", "problist"}
    assert not any(v < 0 for v in metrics.convergence_by_as.values())
    return metrics


def run_fleet_pull_storm_batch(n_clients=2000, n_ases=10):
    """Cohort-scale pull storm, columnar path: 2000 clients across 10
    ASes (200 per AS — the regime the fleet layer targets).  One
    ``SyncBatch`` is built per AS and shared by every client on it, one
    shared view is materialized per AS in a single columnar pass
    (mean-field: every client of an AS sees identical server state), and
    per-client bookkeeping is a record-array version write.  The per-AS
    amortization is the ``>=3x`` lever over the row path below."""
    from array import array

    from repro.core.reporting import GlobalView

    server = _build_pull_storm_server()
    per_as = 100_000 // 50
    versions = array("q", bytes(8 * n_clients))
    shared = {}
    total = 0
    for index in range(n_clients):
        asn = 30000 + index % n_ases
        cached = shared.get(asn)
        if cached is None:
            batch = server.sync_batch_for_as(asn, now=10.0)
            view = GlobalView()
            view.apply_batch(batch, now=10.0)
            cached = shared[asn] = (batch, view)
        batch, view = cached
        versions[index] = batch.version
        total += len(view)
    assert total == n_clients * per_as
    assert all(versions)
    return total


def run_fleet_pull_storm_rows(n_clients=2000, n_ases=10):
    """The same pull storm on the per-client row path: every client gets
    its own ``SyncResult`` built and folds it into its own view — the
    executable-spec shape ``ReportingService`` uses for a single client,
    paid once per cohort member.  Kept timed so the batch path's speedup
    stays visible."""
    from repro.core.reporting import GlobalView

    server = _build_pull_storm_server()
    per_as = 100_000 // 50
    total = 0
    for index in range(n_clients):
        asn = 30000 + index % n_ases
        result = server.sync_for_as(asn, now=10.0)
        view = GlobalView()
        view.apply_sync(result, now=10.0)
        total += len(view)
    assert total == n_clients * per_as
    return total


WORKLOADS = {
    "kernel_timer_storm": run_timer_storm,
    "kernel_spawn_join_storm": run_spawn_join_storm,
    "session_request_storm": run_session_request_storm,
    "session_request_storm_notrace": run_session_request_storm_notrace,
    "policy_dns_lookups": run_policy_lookups,
    "policy_multirule_compiled": run_policy_multirule_compiled,
    "globaldb_pull_storm": run_globaldb_pull_storm,
    "fleet_report_storm": run_fleet_report_storm,
    "fleet_report_storm_1m": run_fleet_report_storm_1m,
    "plane_mix_storm": run_plane_mix_storm,
    "fleet_pull_storm_batch": run_fleet_pull_storm_batch,
    "fleet_pull_storm_rows": run_fleet_pull_storm_rows,
    "voting_update_storm": run_voting_update_storm,
}

#: Per-workload override of the best-of round count: the 1M storm runs
#: seconds per round, and best-of-2 bounds the recording job's runtime
#: without giving up a warm second sample.
ROUNDS_OVERRIDE = {"fleet_report_storm_1m": 2}


def best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after",
                        help="key to record under (e.g. seed-baseline, after)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--compare", action="append", default=None, metavar="LABEL",
        help="extra recorded label(s) to compute speedups against "
             "(default: seed-baseline)",
    )
    args = parser.parse_args()

    # Untimed gate: the linear policy path must still agree with the
    # compiled one (it left the timed set — see its docstring).
    check_policy_multirule_linear_smoke()

    timings = {
        name: best_of(fn, min(args.rounds, ROUNDS_OVERRIDE.get(name, args.rounds)))
        for name, fn in WORKLOADS.items()
    }

    history = {}
    if OUT.exists():
        history = json.loads(OUT.read_text())
    history[args.label] = {
        "seconds": timings,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    for base_label in args.compare or ["seed-baseline"]:
        baseline = history.get(base_label)
        if not baseline or base_label == args.label:
            continue
        key = (
            "speedup_vs_seed"
            if base_label == "seed-baseline"
            else "speedup_vs_" + base_label.replace("-", "_")
        )
        history[args.label][key] = {
            name: round(baseline["seconds"][name] / timings[name], 2)
            for name in timings
            if name in baseline["seconds"]
        }
    OUT.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    for name, seconds in timings.items():
        print(f"{name}: {seconds * 1000:.2f} ms")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
