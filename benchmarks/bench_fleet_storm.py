"""Fleet-scale storm: 100k cohort clients absorbing a blocking wave.

Not a paper artefact — the capacity check for the §7 deployment story.
The paper's economics assume C-Saw runs at the scale of "millions of
users"; this bench drives a :class:`~repro.core.fleet.ClientCohort`
(clients as per-AS record arrays, not objects) through reporter posts,
staggered batched delta pulls, and convergence tracking, and reports

- reports/sec absorbed by the global_DB during the detection window,
- time-to-convergence of each AS's blocked list after the wave,
- delta-sync bytes and rows per client,

plus a live guard that the columnar batch path beats the per-client row
path by >= 3x on the pull storm (the ratio BENCH_engine.json records as
``fleet_pull_storm_rows`` / ``fleet_pull_storm_batch``), the round-4
guard that the group-applied sweep beats the retained per-client spec
loop by >= 3x on the 100k storm, and a budget guard on the million
client storm (``fleet_report_storm_1m`` in BENCH_engine.json).

Wall-clock timing here uses ``time.perf_counter`` directly — allowed
under ``benchmarks/*`` by the CSL002 scope — and always as back-to-back
in-process ratios, which hold on this drifting box where recorded
absolute numbers do not.
"""

import time

import pytest

from conftest import run_once
from record_engine_bench import (
    _build_pull_storm_server,
    run_fleet_pull_storm_batch,
    run_fleet_pull_storm_rows,
)
from repro.core.fleet import run_fleet_storm, run_fleet_storm_sharded


def test_fleet_report_storm_100k(benchmark, report):
    """>= 100k cohort clients through batched delta sync (acceptance b)."""
    wall_start = time.perf_counter()
    metrics = run_once(benchmark, lambda: run_fleet_storm(
        seed=0, n_ases=50, clients_per_as=2000
    ))
    wall = time.perf_counter() - wall_start

    assert metrics.n_clients == 100_000
    assert metrics.n_ases == 50
    # 20 reporters per AS (1% of 2000) x 20 wave URLs x 50 ASes.
    assert metrics.reports_absorbed == 20_000
    # Every AS's cohort must converge on the wave within the horizon.
    assert len(metrics.convergence_by_as) == 50
    assert all(t >= 0 for t in metrics.convergence_by_as.values())
    # Every client pulled at least twice (staggered over two intervals).
    assert metrics.pulls_served >= 2 * metrics.n_clients
    # Batching: far fewer batches built than pulls served.
    assert metrics.batches_built * 10 < metrics.pulls_served
    assert metrics.bytes_per_client > 0
    assert metrics.rows_per_client > 0
    # The horizon outlives every detection delay: no report left pending.
    assert metrics.pending_at_horizon == 0

    summary = metrics.summary()
    lines = [
        "fleet report storm: 100k clients, 50 ASes, 1% reporters",
        f"  reports absorbed: {metrics.reports_absorbed} "
        f"in {metrics.report_window:.1f} sim-s "
        f"({metrics.reports_absorbed / wall:,.0f}/s wall)",
        f"  pulls served: {metrics.pulls_served} "
        f"via {metrics.batches_built} batches",
        f"  delta sync per client: {metrics.bytes_per_client:.0f} bytes, "
        f"{metrics.rows_per_client:.1f} rows",
        f"  convergence after wave: mean {metrics.mean_convergence:.0f} "
        f"sim-s, max {metrics.max_convergence:.0f} sim-s",
    ]
    report("\n".join(lines))
    assert summary["n_clients"] == 100_000


def test_fleet_storm_sharded_matches_single_process():
    """Fan-out across runner workers must not change a single count —
    per-AS RNG streams make partitioning invisible to the result."""
    single = run_fleet_storm(seed=3, n_ases=8, clients_per_as=50)
    sharded = run_fleet_storm_sharded(
        seed=3, n_ases=8, clients_per_as=50, workers=3
    )
    assert sharded.summary() == single.summary()
    assert sharded.convergence_by_as == single.convergence_by_as


def test_batched_sync_beats_rows_3x(report):
    """Acceptance (c): the columnar batch path must beat the per-client
    row path by >= 3x on the pull storm at cohort scale (200 clients/AS
    amortize each AS's batch + shared view across its whole cohort)."""
    _build_pull_storm_server()  # build outside the timed region

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    batch = best_of(run_fleet_pull_storm_batch)
    rows = best_of(run_fleet_pull_storm_rows)
    speedup = rows / batch
    report(
        "fleet pull storm (2000 clients, 10 ASes, 2000 rows/AS):\n"
        f"  batch: {batch * 1000:.1f} ms   rows: {rows * 1000:.1f} ms   "
        f"speedup: {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched sync only {speedup:.1f}x over the row path (need >= 3x)"
    )


def test_grouped_sweep_beats_spec_3x(report):
    """Round-4 guard (DESIGN.md §11): the group-applied sweep must beat
    the retained per-client spec loop by >= 3x on the 100k report storm.
    ``sweep_mode="spec"`` keeps the pre-round-4 per-client cost shape,
    so this back-to-back in-process ratio stands in for the cross-epoch
    speedup that recorded absolute numbers can't prove on this box."""
    kwargs = dict(seed=0, n_ases=50, clients_per_as=2000)
    grouped_best = spec_best = float("inf")
    grouped = spec = None
    for _ in range(3):  # interleave rounds so drift hits both sides alike
        start = time.perf_counter()
        grouped = run_fleet_storm(sweep_mode="grouped", **kwargs)
        grouped_best = min(grouped_best, time.perf_counter() - start)
        start = time.perf_counter()
        spec = run_fleet_storm(sweep_mode="spec", **kwargs)
        spec_best = min(spec_best, time.perf_counter() - start)

    # The fast path is an optimization, never a semantic change.
    assert grouped.summary() == spec.summary()

    speedup = spec_best / grouped_best
    report(
        "grouped sweep vs per-client spec loop (100k clients, 50 ASes):\n"
        f"  grouped: {grouped_best * 1000:.0f} ms   "
        f"spec: {spec_best * 1000:.0f} ms   speedup: {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"grouped sweep only {speedup:.1f}x over the spec loop (need >= 3x)"
    )


def test_plane_mix_storm_within_1_5x_of_single_plane(report):
    """Plane-machinery guard: a three-plane 100k storm (C-Saw + Encore +
    generated probe lists at the same combined 1% reporter mass as the
    single-plane storm) may cost at most 1.5x ``fleet_report_storm``.
    Plane groups add per-plane RNG streams, per-reporter Encore item
    draws, per-plane curves, and activated per-plane voting histograms
    — all of which must stay amortized against the pull sweep and
    report absorption that dominate the storm.  Interleaved best-of-3,
    same idiom as the grouped-vs-spec guard."""
    from record_engine_bench import run_plane_mix_storm

    single_best = mixed_best = float("inf")
    mixed = None
    for _ in range(3):  # interleave rounds so drift hits both sides alike
        start = time.perf_counter()
        single = run_fleet_storm(seed=0, n_ases=50, clients_per_as=2000)
        single_best = min(single_best, time.perf_counter() - start)
        start = time.perf_counter()
        mixed = run_plane_mix_storm()
        mixed_best = min(mixed_best, time.perf_counter() - start)

    assert single.n_clients == mixed.n_clients == 100_000
    assert sum(mixed.reports_by_plane.values()) == mixed.reports_absorbed
    assert all(
        t >= 0
        for by_as in mixed.convergence_by_plane.values()
        for t in by_as.values()
    )

    ratio = mixed_best / single_best
    report(
        "plane-mix storm vs single-plane storm (100k clients, 50 ASes):\n"
        f"  single: {single_best * 1000:.0f} ms   "
        f"mixed: {mixed_best * 1000:.0f} ms   ratio: {ratio:.2f}x\n"
        f"  reports by plane: {dict(sorted(mixed.reports_by_plane.items()))}"
    )
    assert ratio <= 1.5, (
        f"three-plane storm costs {ratio:.2f}x the single-plane storm "
        "(budget 1.5x)"
    )


def test_fleet_report_storm_1m_within_budget(report):
    """Acceptance: one million clients (100 ASes x 10 000) through the
    full wave + pull storm inside a wall-clock budget.  The budget is
    relative — 10x the population may cost at most 30x the 100k storm
    timed back-to-back on the same box (measured ~10x) — with a floor so
    an unusually fast yardstick run cannot make it vacuously tight."""
    start = time.perf_counter()
    yardstick = run_fleet_storm(seed=0, n_ases=50, clients_per_as=2000)
    wall_100k = time.perf_counter() - start
    assert yardstick.n_clients == 100_000

    start = time.perf_counter()
    metrics = run_fleet_storm(seed=0, n_ases=100, clients_per_as=10_000)
    wall_1m = time.perf_counter() - start

    assert metrics.n_clients == 1_000_000
    assert metrics.reports_absorbed == 200_000
    assert len(metrics.convergence_by_as) == 100
    assert all(t >= 0 for t in metrics.convergence_by_as.values())
    assert metrics.pending_at_horizon == 0
    assert metrics.pulls_served >= 2 * metrics.n_clients

    budget = max(30.0 * wall_100k, 5.0)
    report(
        "fleet report storm: 1M clients, 100 ASes, 1% reporters\n"
        f"  wall: {wall_1m:.2f} s (100k yardstick {wall_100k:.2f} s, "
        f"budget {budget:.1f} s)\n"
        f"  pulls served: {metrics.pulls_served:,} "
        f"via {metrics.batches_built:,} batches\n"
        f"  convergence after wave: mean {metrics.mean_convergence:.0f} "
        f"sim-s, max {metrics.max_convergence:.0f} sim-s"
    )
    assert wall_1m <= budget, (
        f"1M storm took {wall_1m:.2f} s; budget {budget:.1f} s "
        f"(30x the {wall_100k:.2f} s 100k storm)"
    )


@pytest.mark.parametrize("workers", [1, 2])
def test_fleet_storm_deterministic(workers):
    """Same seed, same fleet, any worker count: bit-identical metrics."""
    a = run_fleet_storm_sharded(
        seed=11, n_ases=4, clients_per_as=40, workers=workers
    )
    b = run_fleet_storm_sharded(
        seed=11, n_ases=4, clients_per_as=40, workers=workers
    )
    assert a.summary() == b.summary()
    assert a.convergence_by_as == b.convergence_by_as
