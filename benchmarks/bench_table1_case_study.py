"""Table 1 — filtering mechanisms of ISP-A vs ISP-B (the case study).

Runs C-Saw's detection flowchart from vantages inside both ISPs against
YouTube and the blocked-content categories, and checks that the inferred
mechanisms reproduce Table 1:

  ISP-A / YouTube : HTTP blocking — redirected to a block page
  ISP-B / YouTube : DNS blocking (local-host resolution) + HTTP/S drops
  ISP-A / rest    : HTTP blocking — block page
  ISP-B / rest    : HTTP blocking — block page via iframe
"""

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.core.detection import measure_direct_path
from repro.core.records import BlockStatus, BlockType
from repro.workloads.scenarios import pakistan_case_study


def classify(scenario, isp, url, scheme="http"):
    world = scenario.world
    client, access = world.add_client(
        f"t1-{isp.asn}-{abs(hash(url)) % 10**8}-{scheme}", [isp]
    )
    ctx = world.new_ctx(client, access, stream=f"t1/{isp.asn}/{url}/{scheme}")
    target = url.replace("http://", f"{scheme}://")
    return world.run_process(measure_direct_path(world, ctx, target))


def run_experiment():
    scenario = pakistan_case_study(seed=42, with_proxy_fleet=False)
    results = {}
    for isp_name, isp in (("ISP-A", scenario.isp_a), ("ISP-B", scenario.isp_b)):
        results[(isp_name, "youtube")] = classify(
            scenario, isp, scenario.urls["youtube"]
        )
        results[(isp_name, "youtube-https")] = classify(
            scenario, isp, scenario.urls["youtube"], scheme="https"
        )
        results[(isp_name, "rest")] = classify(scenario, isp, scenario.urls["porn"])
    return results


def describe(outcome):
    if outcome.status is not BlockStatus.BLOCKED:
        return "no blocking"
    return " + ".join(stage.value for stage in outcome.stages)


def test_table1_filtering_mechanisms(benchmark, report):
    results = run_once(benchmark, run_experiment)

    rows = [
        ["YouTube (http)", describe(results[("ISP-A", "youtube")]),
         describe(results[("ISP-B", "youtube")])],
        ["YouTube (https)", describe(results[("ISP-A", "youtube-https")]),
         describe(results[("ISP-B", "youtube-https")])],
        ["Rest (porn/political/...)", describe(results[("ISP-A", "rest")]),
         describe(results[("ISP-B", "rest")])],
    ]
    report(render_table(
        ["Website/Category", "ISP-A (measured)", "ISP-B (measured)"],
        rows,
        title="Table 1 — filtering mechanisms, as inferred by C-Saw\n"
        "paper: ISP-A = HTTP block page; ISP-B = DNS to local host + "
        "HTTP/HTTPS request dropped; rest = block page (iframe on ISP-B)",
    ))

    # ISP-A: HTTP blocking via block page, single-stage.
    a_yt = results[("ISP-A", "youtube")]
    assert a_yt.stages == [BlockType.BLOCK_PAGE]
    # ISP-B: multi-stage — DNS redirect plus dropped requests.
    b_yt = results[("ISP-B", "youtube")]
    assert BlockType.DNS_REDIRECT in b_yt.stages
    assert BlockType.HTTP_TIMEOUT in b_yt.stages
    # ISP-B blocks HTTPS too (SNI) — ISP-A does not.
    assert results[("ISP-A", "youtube-https")].status is BlockStatus.NOT_BLOCKED
    assert results[("ISP-B", "youtube-https")].status is BlockStatus.BLOCKED
    # Rest: block pages on both.
    assert BlockType.BLOCK_PAGE in results[("ISP-A", "rest")].stages
    assert BlockType.BLOCK_PAGE in results[("ISP-B", "rest")].stages
