"""Table 5 — average blocking-detection time per mechanism (50 runs each).

paper:  TCP/IP 21 s · DNS SERVFAIL 10.6 s · DNS REFUSED 0.025 s ·
        HTTP block page 1.8 s · TCP/IP + DNS 32.7 s
"""

import pytest

from conftest import run_once
from repro.analysis import mean, render_table
from repro.core.detection import measure_direct_path
from repro.workloads.scenarios import pakistan_case_study

RUNS = 50

PAPER_SECONDS = {
    "tcp-ip": 21.0,
    "dns-servfail": 10.6,
    "dns-refused": 0.025,
    "http-blockpage": 1.8,
    "tcp-ip+dns": 32.7,
}
TOLERANCES = {  # acceptance bands (seconds)
    "tcp-ip": (19.0, 24.0),
    "dns-servfail": (9.0, 14.0),
    "dns-refused": (0.0, 0.6),
    "http-blockpage": (0.4, 4.0),
    "tcp-ip+dns": (29.0, 38.0),
}


def run_experiment():
    scenario = pakistan_case_study(seed=44, with_proxy_fleet=False)
    world = scenario.world
    client, access = world.add_client("t5-client", [scenario.isp_a])
    averages = {}
    for key in PAPER_SECONDS:
        times = []
        for run in range(RUNS):
            ctx = world.new_ctx(client, access, stream=f"t5/{key}")
            outcome = world.run_process(
                measure_direct_path(world, ctx, scenario.urls[f"table5/{key}"])
            )
            assert outcome.blocked, (key, outcome)
            times.append(outcome.detection_time)
        averages[key] = mean(times)
    return averages


def test_table5_detection_times(benchmark, report):
    averages = run_once(benchmark, run_experiment)
    rows = [
        [key, f"{PAPER_SECONDS[key]:g}", f"{averages[key]:.3f}"]
        for key in PAPER_SECONDS
    ]
    report(render_table(
        ["blocking type", "paper avg (s)", "measured avg (s)"],
        rows,
        title=f"Table 5 — average detection time ({RUNS} runs per type)",
    ))
    for key, (low, high) in TOLERANCES.items():
        assert low <= averages[key] <= high, (key, averages[key])
    # Ordering must match the paper exactly.
    assert (
        averages["dns-refused"]
        < averages["http-blockpage"]
        < averages["dns-servfail"]
        < averages["tcp-ip"]
        < averages["tcp-ip+dns"]
    )
