"""Figure 5 — impact of redundant requests on PLTs.

(a) Blocked pages under four blocking types, serial vs parallel
    redundancy: the parallel approach cuts PLT by ~46-64 % because
    detection time is a large fraction of the total.
(b) Small unblocked page (95 KB): "2 copies (with delay)" ≈ "1 copy";
    plain "2 copies" pays the client-load cost.
(c) Larger unblocked page (316 KB): staggering the duplicate clearly
    beats always-duplicating (client load dominates).

100 requests per curve with inter-arrival times U[1 s, 5 s] (paper setup).
"""

import pytest

from conftest import run_once
from repro.analysis import mean, percentile, render_table
from repro.censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
)
from repro.censor.policy import Matcher, Rule
from repro.core import CSawClient, CSawConfig
from repro.runner import TrialSpec, merge_values, run_trials
from repro.workloads.scenarios import pakistan_case_study

# Figure 5a page sizes per blocking type (from the figure's annotations).
FIG5A_PAGES = {
    "tcp-ip": 1_469_000,
    "dns-servfail": 340_000,
    "dns-nxdomain+tcp-ip": 1_342_000,
    "blockpage": 85_000,
}
FIG5A_RUNS = 12
FIG5BC_REQUESTS = 100


def build_fig5a_world():
    scenario = pakistan_case_study(seed=201, with_proxy_fleet=False)
    world = scenario.world
    policy = world.network.ases[scenario.isp_a.asn].censor.policy
    urls = {}
    for key, size in FIG5A_PAGES.items():
        hostname = f"fig5a-{key.replace('+', '-')}.example.com"
        world.web.add_site(hostname, location="us-east", bandwidth_bps=100e6)
        world.web.add_page(f"http://{hostname}/", size_bytes=size)
        urls[key] = f"http://{hostname}/"
        host_ip = world.network.hosts_by_name[hostname].ip
        if key == "tcp-ip":
            rule = Rule(
                matcher=Matcher(domains={hostname}, ips={host_ip}),
                ip=IpVerdict(IpAction.DROP),
            )
        elif key == "dns-servfail":
            rule = Rule(
                matcher=Matcher(domains={hostname}),
                dns=DnsVerdict(DnsAction.SERVFAIL),
            )
        elif key == "dns-nxdomain+tcp-ip":
            rule = Rule(
                matcher=Matcher(domains={hostname}, ips={host_ip}),
                dns=DnsVerdict(DnsAction.NXDOMAIN),
                ip=IpVerdict(IpAction.DROP),
            )
        else:  # blockpage
            rule = Rule(
                matcher=Matcher(domains={hostname}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
            )
        policy.add_rule(rule)
    return scenario, urls


def run_fig5a():
    scenario, urls = build_fig5a_world()
    world = scenario.world
    results = {}
    for mode in ("serial", "parallel"):
        for key, url in urls.items():
            client = CSawClient(
                world,
                f"f5a-{mode}-{key}",
                [scenario.isp_a],
                # rotation 0: a fresh circuit per fetch, so both modes
                # average over circuit quality instead of riding one draw.
                transports=scenario.make_transports(
                    f"f5a-{mode}-{key}", include=["tor"], tor_rotation=0.0
                ),
                config=CSawConfig(redundancy_mode=mode),
            )
            plts = []
            for _ in range(FIG5A_RUNS):
                client.local_db.clear()  # every run sees a fresh URL

                def one():
                    response = yield from client.request(url)
                    yield response.measurement_process
                    return response

                response = world.run_process(one())
                assert response.ok, (mode, key)
                plts.append(response.plt)
            results[(mode, key)] = mean(plts)
    return results


def test_fig5a_serial_vs_parallel_blocked_pages(benchmark, report):
    results = run_once(benchmark, run_fig5a)
    rows = []
    reductions = {}
    for key in FIG5A_PAGES:
        serial = results[("serial", key)]
        parallel = results[("parallel", key)]
        reduction = 1.0 - parallel / serial
        reductions[key] = reduction
        rows.append(
            [key, f"{FIG5A_PAGES[key] // 1000} KB", f"{serial:.1f}",
             f"{parallel:.1f}", f"{reduction:.0%}"]
        )
    report(render_table(
        ["blocking type", "page", "serial PLT (s)", "parallel PLT (s)",
         "reduction"],
        rows,
        title="Figure 5a — serial vs parallel redundant requests on blocked "
        "pages\npaper: parallel cuts PLT by 45.8%-64.1%",
    ))
    # Detection time is the dominant cost for timeout-style blocking; for
    # block pages (fast detection) the win is smaller — our block-page
    # detection is faster than the paper's 1.8 s, so the gain shrinks.
    for key in ("tcp-ip", "dns-servfail", "dns-nxdomain+tcp-ip"):
        assert reductions[key] >= 0.40, (key, reductions[key])
    assert reductions["blockpage"] >= -0.10  # parallel never clearly worse
    assert max(reductions.values()) >= 0.5


_FIG5BC_MODES = {
    "1 copy": dict(max_redundant_requests=1, aggregation_enabled=False),
    "2 copies": dict(max_redundant_requests=2, aggregation_enabled=False),
    "2 copies (with delay)": dict(
        max_redundant_requests=2,
        redundant_delay=2.0,
        aggregation_enabled=False,
    ),
}


def _fig5bc_arm(size_key, label, mode_index, config_kwargs):
    """One redundancy mode on its own fresh scenario (same seed, so all
    modes see identical topology/web state and differ only in config)."""
    scenario = pakistan_case_study(seed=202, with_proxy_fleet=False)
    world = scenario.world
    hostname = f"fig5-{size_key}.example.com"
    size = 95_000 if size_key == "small" else 316_000
    from repro.simnet.web import WebPage

    world.web.add_site(
        hostname,
        location="us-east",
        bandwidth_bps=100e6,
        catch_all=lambda path: WebPage(
            url=f"http://{hostname}{path}", size_bytes=size
        ),
    )
    client = CSawClient(
        world,
        f"f5bc-{size_key}-mode{mode_index}",
        [scenario.isp_a],
        transports=scenario.make_transports(
            f"f5bc-{size_key}-{label}", include=["tor"]
        ),
        config=CSawConfig(**config_kwargs),
    )
    rng = world.rngs.stream(f"fig5bc/{size_key}/{label}")
    plts = []

    def request_one(index):
        response = yield from client.request(
            f"http://{hostname}/page-{index}"
        )
        plts.append(response.plt)
        yield response.measurement_process

    def driver():
        for index in range(FIG5BC_REQUESTS):
            yield world.env.timeout(rng.uniform(1.0, 5.0))
            world.env.process(request_one(index))

    world.run_process(driver())
    world.env.run()  # drain outstanding requests
    return plts


def run_fig5bc(size_key):
    # Independent trials, one per redundancy mode, fanned via the runner.
    specs = [
        TrialSpec(
            name=label,
            fn=_fig5bc_arm,
            kwargs=dict(size_key=size_key, label=label,
                        mode_index=mode_index, config_kwargs=config_kwargs),
        )
        for mode_index, (label, config_kwargs) in enumerate(_FIG5BC_MODES.items())
    ]
    return merge_values(run_trials(specs))


def _bc_table(series, title):
    rows = []
    for label, values in series.items():
        rows.append(
            [label, len(values), f"{percentile(values, 50):.2f}",
             f"{percentile(values, 90):.2f}", f"{percentile(values, 99):.2f}"]
        )
    return render_table(
        ["mode", "n", "p50 (s)", "p90 (s)", "p99 (s)"], rows, title=title
    )


def test_fig5b_small_unblocked_page(benchmark, report):
    series = run_once(benchmark, lambda: run_fig5bc("small"))
    report(_bc_table(
        series,
        "Figure 5b — redundancy on a small unblocked page (95 KB, "
        f"{FIG5BC_REQUESTS} requests, inter-arrival U[1s,5s])\n"
        "paper: '2 copies (with delay)' performs like '1 copy'",
    ))
    one = percentile(series["1 copy"], 50)
    delayed = percentile(series["2 copies (with delay)"], 50)
    # Staggered duplicates cost (almost) nothing for small pages.
    assert delayed == pytest.approx(one, rel=0.25)


def test_fig5c_large_unblocked_page(benchmark, report):
    series = run_once(benchmark, lambda: run_fig5bc("large"))
    report(_bc_table(
        series,
        "Figure 5c — redundancy on a larger unblocked page (316 KB)\n"
        "paper: '2 copies (with delay)' performs much better than '2 copies'",
    ))
    plain = percentile(series["2 copies"], 50)
    delayed = percentile(series["2 copies (with delay)"], 50)
    assert delayed < plain
