"""The arms race: censor escalation vs data-driven re-adaptation (§8).

The paper's core bet is that measurement-driven circumvention adapts as
the censor evolves.  This bench plays a four-round escalation against one
C-Saw client:

  round 0  censor blocks HTTP (block page)      → C-Saw: HTTPS fix
  round 1  censor adds SNI filtering            → C-Saw: domain fronting
  round 2  censor blackholes the site's IP      → C-Saw: fronting still
           (fronting never touches that IP)       works
  round 3  censor blocks the front's IP too     → C-Saw: falls back to a
           (accepting the collateral damage)      relay (Tor/Lantern)

After every escalation the client must converge back to a *working*
method within a few accesses, and the PLT staircase should reflect the
rising price of each escalation.
"""

import pytest

from conftest import run_once
from repro.analysis import mean, render_table
from repro.censor.actions import (
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from repro.censor.policy import Matcher, Rule
from repro.core import CSawClient, CSawConfig
from repro.workloads.scenarios import FRONT, YOUTUBE, pakistan_case_study

ACCESSES_PER_ROUND = 8


def run_experiment():
    scenario = pakistan_case_study(seed=808, with_proxy_fleet=False)
    world = scenario.world
    url = scenario.urls["youtube"]
    policy = world.network.ases[scenario.isp_a.asn].censor.policy
    # Start from a clean slate for YouTube on ISP-A.
    policy.remove_rules("youtube")

    client = CSawClient(
        world, "arms-race", [scenario.isp_a],
        transports=scenario.make_transports("arms-race"),
        config=CSawConfig(record_ttl=10 * 24 * 3600.0, probe_probability=0.0),
    )

    youtube_ip = world.network.hosts_by_name[YOUTUBE].ip
    front_ip = world.network.hosts_by_name[FRONT].ip
    escalations = [
        (
            "HTTP block page",
            Rule(
                matcher=Matcher(domains={"youtube.com"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
                label="race-0",
            ),
        ),
        (
            "+ SNI filtering",
            Rule(
                matcher=Matcher(domains={"youtube.com"}),
                tls=TlsVerdict(TlsAction.DROP),
                label="race-1",
            ),
        ),
        (
            "+ IP blackhole",
            Rule(
                matcher=Matcher(ips={youtube_ip}),
                ip=IpVerdict(IpAction.DROP),
                label="race-2",
            ),
        ),
        (
            "+ front IP blocked",
            Rule(
                matcher=Matcher(ips={front_ip}, domains={FRONT}),
                ip=IpVerdict(IpAction.DROP),
                tls=TlsVerdict(TlsAction.DROP),
                label="race-3",
            ),
        ),
    ]

    rounds = []

    def play():
        for label, rule in escalations:
            policy.add_rule(rule)
            paths, plts, failures = [], [], 0
            for _ in range(ACCESSES_PER_ROUND):
                yield world.env.timeout(60.0)
                response = yield from client.request(url)
                yield response.measurement_process
                if response.ok:
                    paths.append(response.path)
                    plts.append(response.plt)
                else:
                    failures += 1
            rounds.append({
                "label": label,
                "converged_path": paths[-1] if paths else None,
                "mean_plt": mean(plts[-3:]) if len(plts) >= 3 else None,
                "failures": failures,
                "served": len(paths),
            })

    world.run_process(play())
    return rounds


def test_arms_race_readaptation(benchmark, report):
    rounds = run_once(benchmark, run_experiment)
    rows = [
        [r["label"], r["converged_path"] or "-",
         f"{r['mean_plt']:.2f}" if r["mean_plt"] else "-",
         f"{r['served']}/{ACCESSES_PER_ROUND}"]
        for r in rounds
    ]
    report(render_table(
        ["censor escalation", "C-Saw converges to", "steady PLT (s)",
         "served"],
        rows,
        title="Arms race — censor escalates, C-Saw re-adapts "
        f"({ACCESSES_PER_ROUND} accesses per round)",
    ))

    assert rounds[0]["converged_path"] == "https"
    assert rounds[1]["converged_path"] == "domain-fronting"
    assert rounds[2]["converged_path"] == "domain-fronting"
    assert rounds[3]["converged_path"] in ("tor", "lantern")
    # Content kept flowing: at least 6 of 8 accesses served every round.
    for r in rounds:
        assert r["served"] >= ACCESSES_PER_ROUND - 2, r
    # The price of escalation: relays cost more than local fixes.
    assert rounds[3]["mean_plt"] > rounds[0]["mean_plt"]
