"""Record a cross-epoch storm pair, interleaved.

This box drifts by tens of percent across minutes, so a recorded number
from one epoch cannot be compared with one recorded later — the
``before-session`` label (2026-08-05) is ~20% faster than anything this
host produces today.  The only comparison that holds is an interleaved
one: alternate the two sides in adjacent subprocesses, many rounds, and
take each side's minimum.

Usage::

    PYTHONPATH=src python benchmarks/record_interleaved_storm.py \
        --pair session --old-root /path/to/checkout-of-c0895d8
    PYTHONPATH=src python benchmarks/record_interleaved_storm.py \
        --pair fleet --old-root /path/to/checkout-of-712ecdb

Both sides run *this repo's* workload definitions (the old checkouts'
bench harnesses predate the workloads; each workload only touches
modules whose call surface exists unchanged there, and sharing one
definition keeps the timed shape identical).  Pairs:

- ``session``: ``session_request_storm`` against the pre-tracing
  checkout, then ``session_request_storm_notrace`` + the full storm
  against the current tree.  Writes ``before-session-r2`` and patches
  the current label's (default ``after-fleet``) storm numbers, so
  ``bench_engine_performance.py``'s ``TraceMode.OFF`` guard compares
  numbers from one interleaved session.
- ``fleet``: ``fleet_report_storm`` against the pre-grouped-sweep
  checkout (whose fleet code *is* the ``after-fleet`` epoch), then the
  grouped 100k storm + the ``fleet_report_storm_1m`` million-client
  storm against the current tree.  Patches ``after-fleet``'s storm
  number and records both under ``after-fleet-1m``.

Either way the patched label's ``speedup_vs_*`` maps are recomputed so
the recorded cross-epoch ratios come from the same interleaved session.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"

#: The cross-epoch pairs this recorder knows how to interleave.  Each
#: side is (name, which-src, workload): ``old`` runs against the
#: ``--old-root`` checkout's ``src``, ``new`` against this tree's.
PAIRS = {
    "session": {
        "old_commit": "c0895d8",
        "label_old": "before-session-r2",
        "label_new": "after-fleet",
        "rounds": 12,
        "sides": [
            ("old", "old", "session_request_storm"),
            ("notrace", "new", "session_request_storm_notrace"),
            ("full", "new", "session_request_storm"),
        ],
    },
    "fleet": {
        "old_commit": "712ecdb",
        "label_old": "after-fleet",
        "label_new": "after-fleet-1m",
        "rounds": 8,
        "sides": [
            ("old", "old", "fleet_report_storm"),
            ("new", "new", "fleet_report_storm"),
            ("new1m", "new", "fleet_report_storm_1m"),
        ],
    },
}

#: run inside a fresh subprocess per measurement: argv = src dir,
#: workload, inner best-of rounds.  Always loads this repo's bench
#: module so both epochs time the exact same workload definition.
_DRIVER = """
import sys
src, workload, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
sys.path.insert(0, src)
sys.path.insert(0, %r)
import record_engine_bench as bench
rounds = min(rounds, bench.ROUNDS_OVERRIDE.get(workload, rounds))
print(bench.best_of(bench.WORKLOADS[workload], rounds))
""" % str(ROOT / "benchmarks")


def measure(src: str, workload: str, inner_rounds: int) -> float:
    out = subprocess.run(
        [sys.executable, "-c", _DRIVER, src, workload, str(inner_rounds)],
        capture_output=True,
        text=True,
        check=True,
    )
    return float(out.stdout.strip().splitlines()[-1])


def recompute_speedups(history: dict, label: str) -> None:
    """Refresh ``label``'s ``speedup_vs_*`` maps from patched seconds."""
    entry = history[label]
    for key in [k for k in entry if k.startswith("speedup_vs_")]:
        # record_engine_bench writes "speedup_vs_seed" for seed-baseline.
        base_label = (
            "seed-baseline" if key == "speedup_vs_seed"
            else key[len("speedup_vs_"):].replace("_", "-")
        )
        baseline = history.get(base_label, {}).get("seconds", {})
        entry[key] = {
            name: round(baseline[name] / seconds, 2)
            for name, seconds in entry["seconds"].items()
            if name in baseline
        }


def write_session(history: dict, best: dict, args, stamp: str) -> None:
    history[args.label_old] = {
        "seconds": {"session_request_storm": best["old"]},
        "python": platform.python_version(),
        "recorded_at": stamp,
        "note": (
            "pre-tracing storm re-measured interleaved with "
            f"{args.label_new}'s storms ({args.rounds} alternating rounds)"
        ),
    }
    new = history.setdefault(args.label_new, {"seconds": {}})
    new["seconds"]["session_request_storm_notrace"] = best["notrace"]
    new["seconds"]["session_request_storm"] = best["full"]
    new["storms_recorded_at"] = stamp
    recompute_speedups(history, args.label_new)
    ratio = best["notrace"] / best["old"]
    new["notrace_vs_pretracing"] = round(ratio, 3)
    print(f"\nTraceMode.OFF vs pre-tracing: {ratio:.3f}x (budget < 1.05)")
    print(f"full tracing vs pre-tracing:  {best['full'] / best['old']:.3f}x")


def write_fleet(history: dict, best: dict, args, stamp: str) -> None:
    # The old checkout's fleet code is the after-fleet epoch: patching
    # that label's storm number re-measures the same code interleaved.
    old = history.setdefault(args.label_old, {"seconds": {}})
    old["seconds"]["fleet_report_storm"] = best["old"]
    old["storms_recorded_at"] = stamp
    new = history.setdefault(args.label_new, {"seconds": {}})
    new["seconds"]["fleet_report_storm"] = best["new"]
    new["seconds"]["fleet_report_storm_1m"] = best["new1m"]
    new["storms_recorded_at"] = stamp
    for label in (args.label_old, args.label_new):
        recompute_speedups(history, label)
    speedup = best["old"] / best["new"]
    # 10x the clients should cost ~10x the wall; record the overshoot.
    scale_cost = best["new1m"] / (10.0 * best["new"])
    new["storm_1m_vs_10x_100k"] = round(scale_cost, 3)
    print(f"\ngrouped sweep vs {args.label_old} storm: {speedup:.2f}x "
          "(guard >= 3x)")
    print(f"1M storm: {best['new1m']:.2f}s = {scale_cost:.2f}x the cost "
          "of 10x the 100k storm")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", choices=sorted(PAIRS), default="session")
    parser.add_argument(
        "--old-root", required=True,
        help="checkout of the pair's pre-optimization commit",
    )
    parser.add_argument("--rounds", type=int, default=None,
                        help="alternating subprocess rounds per side")
    parser.add_argument("--inner-rounds", type=int, default=5,
                        help="in-process best-of rounds per subprocess")
    parser.add_argument("--label-old", default=None)
    parser.add_argument("--label-new", default=None)
    args = parser.parse_args()

    pair = PAIRS[args.pair]
    args.rounds = args.rounds if args.rounds is not None else pair["rounds"]
    args.label_old = args.label_old or pair["label_old"]
    args.label_new = args.label_new or pair["label_new"]
    roots = {"old": str(pathlib.Path(args.old_root) / "src"),
             "new": str(ROOT / "src")}
    sides = [(name, roots[which], workload)
             for name, which, workload in pair["sides"]]

    best = {name: float("inf") for name, _, _ in sides}
    for i in range(args.rounds):
        # Rotate the order each round so neither side systematically
        # runs while the box is warmer.
        order = sides[i % len(sides):] + sides[: i % len(sides)]
        for name, src, workload in order:
            seconds = measure(src, workload, args.inner_rounds)
            best[name] = min(best[name], seconds)
        print(
            f"round {i + 1}/{args.rounds}: "
            + "  ".join(f"{n}={best[n] * 1000:.2f}ms" for n in best)
        )

    history = json.loads(OUT.read_text()) if OUT.exists() else {}
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    writer = write_session if args.pair == "session" else write_fleet
    writer(history, best, args, stamp)
    OUT.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
