"""Record the cross-epoch request-storm pair, interleaved.

This box drifts by tens of percent across minutes, so a recorded number
from one epoch cannot be compared with one recorded later — the
``before-session`` label (2026-08-05) is ~20% faster than anything this
host produces today.  The only comparison that holds is an interleaved
one: alternate the two sides in adjacent subprocesses, many rounds, and
take each side's minimum.

Usage::

    PYTHONPATH=src python benchmarks/record_interleaved_storm.py \
        --old-root /path/to/checkout-of-c0895d8 [--rounds 12]

Both sides run *this repo's* workload definitions (the old checkout's
bench harness predates the session storm; the workload only touches
modules that exist unchanged there, and sharing one definition keeps the
timed shape identical): ``session_request_storm`` against the old
checkout's ``src``, then ``session_request_storm_notrace`` and
``session_request_storm`` against the current tree.  Results merge into
BENCH_engine.json:

- ``before-session-r2``: the re-measured pre-tracing storm;
- the current label's (default ``after-fleet``) two storm numbers are
  overwritten with the interleaved minima and its speedup maps
  recomputed, so ``bench_engine_performance.py``'s ``TraceMode.OFF``
  guard compares numbers from the same interleaved session.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"

#: run inside a fresh subprocess per measurement: argv = src dir,
#: workload, inner best-of rounds.  Always loads this repo's bench
#: module so both epochs time the exact same workload definition.
_DRIVER = """
import sys
src, workload, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
sys.path.insert(0, src)
sys.path.insert(0, %r)
import record_engine_bench as bench
print(bench.best_of(bench.WORKLOADS[workload], rounds))
""" % str(ROOT / "benchmarks")


def measure(src: str, workload: str, inner_rounds: int) -> float:
    out = subprocess.run(
        [sys.executable, "-c", _DRIVER, src, workload, str(inner_rounds)],
        capture_output=True,
        text=True,
        check=True,
    )
    return float(out.stdout.strip().splitlines()[-1])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--old-root", required=True,
        help="checkout of the pre-session-refactor commit (c0895d8)",
    )
    parser.add_argument("--rounds", type=int, default=12,
                        help="alternating subprocess rounds per side")
    parser.add_argument("--inner-rounds", type=int, default=5,
                        help="in-process best-of rounds per subprocess")
    parser.add_argument("--label-old", default="before-session-r2")
    parser.add_argument("--label-new", default="after-fleet")
    args = parser.parse_args()

    sides = [
        ("old", str(pathlib.Path(args.old_root) / "src"),
         "session_request_storm"),
        ("notrace", str(ROOT / "src"), "session_request_storm_notrace"),
        ("full", str(ROOT / "src"), "session_request_storm"),
    ]
    best = {name: float("inf") for name, _, _ in sides}
    for i in range(args.rounds):
        # Rotate the order each round so neither side systematically
        # runs while the box is warmer.
        order = sides[i % len(sides):] + sides[: i % len(sides)]
        for name, src, workload in order:
            seconds = measure(src, workload, args.inner_rounds)
            best[name] = min(best[name], seconds)
        print(
            f"round {i + 1}/{args.rounds}: "
            + "  ".join(f"{n}={best[n] * 1000:.2f}ms" for n in best)
        )

    history = json.loads(OUT.read_text()) if OUT.exists() else {}
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    history[args.label_old] = {
        "seconds": {"session_request_storm": best["old"]},
        "python": platform.python_version(),
        "recorded_at": stamp,
        "note": (
            "pre-tracing storm re-measured interleaved with "
            f"{args.label_new}'s storms ({args.rounds} alternating rounds)"
        ),
    }
    new = history.setdefault(args.label_new, {"seconds": {}})
    new["seconds"]["session_request_storm_notrace"] = best["notrace"]
    new["seconds"]["session_request_storm"] = best["full"]
    new["storms_recorded_at"] = stamp
    # Recompute this label's speedup maps with the patched numbers.
    for key in [k for k in new if k.startswith("speedup_vs_")]:
        base_label = key[len("speedup_vs_"):].replace("_", "-")
        baseline = history.get(base_label, {}).get("seconds", {})
        new[key] = {
            name: round(baseline[name] / seconds, 2)
            for name, seconds in new["seconds"].items()
            if name in baseline
        }
    ratio = best["notrace"] / best["old"]
    new["notrace_vs_pretracing"] = round(ratio, 3)
    OUT.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    print(f"\nTraceMode.OFF vs pre-tracing: {ratio:.3f}x (budget < 1.05)")
    print(f"full tracing vs pre-tracing:  {best['full'] / best['old']:.3f}x")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
