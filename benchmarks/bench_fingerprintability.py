"""§8 — fingerprintability of C-Saw users.

A surveilling censor scores subscribers on C-Saw-shaped traffic patterns
(paired redundant flows, relay failovers after blocking).  The paper
argues selective redundancy keeps these signals rare; the strawman that
duplicates *every* request is trivially identifiable.

Setup: one censoring AS with traffic observation on; N C-Saw users
browsing a mixed (mostly unblocked) workload, M plain-browser users on
the same workload.  Report the censor's precision/recall against each
C-Saw variant.
"""

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.censor.fingerprint import FingerprintAnalyzer
from repro.core import CSawClient, CSawConfig
from repro.circumvent import DirectTransport
from repro.workloads.scenarios import pakistan_case_study

N_CSAW = 6
N_PLAIN = 12
REQUESTS = 25


def run_variant(selective: bool):
    scenario = pakistan_case_study(seed=701 if selective else 702,
                                   with_proxy_fleet=False)
    world = scenario.world
    box = world.network.ases[scenario.isp_a.asn].censor
    box.observe_traffic = True
    relay_ips = set(scenario.tor.public_relay_ips()) | {
        p.ip for p in (h for h in scenario.lantern.proxies)
    }

    # A mixed workload: mostly unblocked pages, occasionally blocked ones.
    urls = [
        scenario.urls["small-unblocked"],
        scenario.urls["large-unblocked"],
        scenario.urls["youtube"],
    ]

    csaw_clients = [
        CSawClient(
            world,
            f"fpb-csaw-{index}-{selective}",
            [scenario.isp_a],
            transports=scenario.make_transports(
                f"fpb-csaw-{index}-{selective}", include=["tor", "lantern"]
            ),
            config=CSawConfig(),
        )
        for index in range(N_CSAW)
    ]
    plain = [
        world.add_client(f"fpb-plain-{index}-{selective}", [scenario.isp_a])
        for index in range(N_PLAIN)
    ]
    direct = DirectTransport()

    def drive():
        rng = world.rngs.stream(f"fpb/{selective}")
        for round_index in range(REQUESTS):
            yield world.env.timeout(rng.uniform(5, 30))
            for client in csaw_clients:
                url = rng.choices(urls, weights=[5, 4, 1])[0]
                if not selective:
                    client.local_db.clear()  # strawman: every URL "new"
                response = yield from client.request(url)
                yield response.measurement_process
            for host, access in plain:
                url = rng.choices(urls, weights=[5, 4, 1])[0]
                ctx = world.new_ctx(host, access, stream="fpb-plain")
                yield from direct.fetch(world, ctx, url)

    world.run_process(drive())
    analyzer = FingerprintAnalyzer(box, relay_ips)
    truth = [c.host.ip for c in csaw_clients]
    return analyzer.evaluate(truth, threshold=0.25)


def test_fingerprintability_selective_vs_always(benchmark, report):
    def experiment():
        return {
            "C-Saw (selective redundancy)": run_variant(selective=True),
            "always-redundant strawman": run_variant(selective=False),
        }

    results = run_once(benchmark, experiment)
    rows = [
        [label, f"{r['recall']:.0%}", f"{r['precision']:.0%}",
         int(r["labelled"])]
        for label, r in results.items()
    ]
    report(render_table(
        ["variant", "censor recall", "censor precision", "users labelled"],
        rows,
        title="§8 — fingerprintability: can the censor spot C-Saw users?\n"
        f"({N_CSAW} C-Saw users, {N_PLAIN} plain users, {REQUESTS} rounds)",
    ))
    selective = results["C-Saw (selective redundancy)"]
    strawman = results["always-redundant strawman"]
    # Duplicating everything is trivially identifiable; selective
    # redundancy meaningfully reduces the censor's coverage.
    assert strawman["recall"] >= 0.9
    assert selective["recall"] <= strawman["recall"]