"""Figure 7 — C-Saw vs Lantern vs Tor (§7.3), plus the headline claim.

(a) DNS-blocked page: C-Saw applies the public-DNS local fix; Lantern
    detects then relays; Tor always relays.  C-Saw wins big.
(b) Unblocked page: C-Saw rides the direct path; the others tunnel.
(c) Multi-stage blocking with no local fix available: C-Saw w/ Lantern vs
    C-Saw w/ Tor — the relay choice is what differs, Lantern's single
    relay beats Tor's three.

The abstract's numbers: C-Saw improves average PLT by up to 48 % over
Lantern and 63-68 % over Tor.
"""

import pytest

from conftest import run_once
from repro.analysis import mean, percentile, render_table
from repro.censor.actions import DnsAction, DnsVerdict, HttpAction, HttpVerdict, IpAction, IpVerdict
from repro.censor.policy import Matcher, Rule
from repro.circumvent import LanternSystem, TorTransport
from repro.core import CSawClient, CSawConfig
from repro.workloads.scenarios import pakistan_case_study

RUNS = 60


def build_world():
    scenario = pakistan_case_study(seed=501, with_proxy_fleet=False)
    world = scenario.world
    policy = world.network.ases[scenario.isp_a.asn].censor.policy

    # (a) resolver-based DNS blocking: public DNS is the perfect fix.
    world.web.add_site("f7-dnsblocked.example.com", location="us-east")
    world.web.add_page("http://f7-dnsblocked.example.com/", size_bytes=300_000)
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"f7-dnsblocked.example.com"}),
            dns=DnsVerdict(DnsAction.NXDOMAIN),
        )
    )
    # (c) multi-stage: DNS redirect + IP blackhole -> no local fix.
    world.web.add_site("f7-multistage.example.com", location="us-east")
    world.web.add_page("http://f7-multistage.example.com/", size_bytes=300_000)
    ms_ip = world.network.hosts_by_name["f7-multistage.example.com"].ip
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"f7-multistage.example.com"}, ips={ms_ip}),
            dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.70.70.70"),
            ip=IpVerdict(IpAction.DROP),
        )
    )
    return scenario


def csaw_series(scenario, name, url, include, runs=RUNS):
    world = scenario.world
    client = CSawClient(
        world,
        name,
        [scenario.isp_a],
        transports=scenario.make_transports(name, include=include),
        config=CSawConfig(probe_probability=0.1),
    )
    plts = []

    def one():
        response = yield from client.request(url)
        plts.append(response.plt)
        yield response.measurement_process

    for _ in range(runs):
        world.run_process(one())
    return plts[1:]  # drop the first (detection) access: steady state


def lantern_series(scenario, name, url, runs=RUNS):
    world = scenario.world
    client, access = world.add_client(name, [scenario.isp_a])
    system = LanternSystem(
        scenario.lantern_transport(name), proxy_all=False
    )
    plts = []

    def one():
        ctx = world.new_ctx(client, access, stream=f"f7/{name}")
        result = yield from system.fetch(world, ctx, url)
        if result.ok:
            plts.append(result.elapsed)

    for _ in range(runs):
        world.run_process(one())
    return plts[1:]


def tor_series(scenario, name, url, runs=RUNS):
    world = scenario.world
    client, access = world.add_client(name, [scenario.isp_a])
    transport = scenario.tor_transport(name, tor_rotation=120.0)
    plts = []

    def one():
        ctx = world.new_ctx(world.network.hosts_by_name[name], access,
                            stream=f"f7/{name}")
        result = yield from transport.fetch(world, ctx, url)
        if result.ok:
            plts.append(result.elapsed)

    for _ in range(runs):
        world.run_process(one())
    return plts[1:]


def table(series, title):
    rows = [
        [label, len(v), f"{percentile(v, 50):.2f}", f"{mean(v):.2f}",
         f"{percentile(v, 90):.2f}"]
        for label, v in series.items()
    ]
    return render_table(
        ["system", "n", "p50 (s)", "mean (s)", "p90 (s)"], rows, title=title
    )


def test_fig7a_blocked_page_dns_blocking(benchmark, report):
    def experiment():
        scenario = build_world()
        url = "http://f7-dnsblocked.example.com/"
        return {
            "C-Saw (w/ Tor)": csaw_series(
                scenario, "f7a-csaw", url, ["public-dns", "https", "tor"]
            ),
            "Lantern": lantern_series(scenario, "f7a-lantern", url),
            "Tor": tor_series(scenario, "f7a-tor", url),
        }

    series = run_once(benchmark, experiment)
    report(table(
        series,
        f"Figure 7a — DNS-blocked page ({RUNS} accesses)\n"
        "paper: C-Saw's local fix (public DNS) beats Lantern and Tor",
    ))
    csaw = mean(series["C-Saw (w/ Tor)"])
    lantern = mean(series["Lantern"])
    tor = mean(series["Tor"])
    assert csaw < lantern < tor
    # Headline claims: up to 48% over Lantern, 63-68% over Tor.
    assert 1 - csaw / lantern >= 0.30
    assert 1 - csaw / tor >= 0.50


def test_fig7b_unblocked_page(benchmark, report):
    def experiment():
        scenario = build_world()
        url = scenario.urls["small-unblocked"]
        # §7.3 operates Lantern as a full proxy (Figure 7b shows it
        # relaying unblocked pages too).
        world = scenario.world
        client, access = world.add_client("f7b-lantern", [scenario.isp_a])
        lantern = LanternSystem(
            scenario.lantern_transport("f7b-lantern"), proxy_all=True
        )
        plts = []

        def one():
            ctx = world.new_ctx(client, access, stream="f7b/lantern")
            result = yield from lantern.fetch(world, ctx, url)
            if result.ok:
                plts.append(result.elapsed)

        for _ in range(RUNS):
            world.run_process(one())
        return {
            "C-Saw": csaw_series(
                scenario, "f7b-csaw", url, ["public-dns", "https", "tor"]
            ),
            "Lantern": plts[1:],
            "Tor": tor_series(scenario, "f7b-tor", url),
        }

    series = run_once(benchmark, experiment)
    report(table(
        series,
        f"Figure 7b — unblocked page ({RUNS} accesses)\n"
        "paper: C-Saw simply uses the direct path and wins",
    ))
    assert mean(series["C-Saw"]) < mean(series["Lantern"]) < mean(series["Tor"])


def test_fig7c_csaw_with_lantern_vs_tor(benchmark, report):
    def experiment():
        scenario = build_world()
        url = "http://f7-multistage.example.com/"
        return {
            "C-Saw (w/ Lantern)": csaw_series(
                scenario, "f7c-lantern", url, ["public-dns", "https", "lantern"]
            ),
            "C-Saw (w/ Tor)": csaw_series(
                scenario, "f7c-tor", url, ["public-dns", "https", "tor"]
            ),
        }

    series = run_once(benchmark, experiment)
    report(table(
        series,
        f"Figure 7c — multi-stage blocking, relay choice ({RUNS} accesses)\n"
        "paper: C-Saw w/ Lantern significantly outperforms C-Saw w/ Tor",
    ))
    assert mean(series["C-Saw (w/ Lantern)"]) < mean(series["C-Saw (w/ Tor)"])
