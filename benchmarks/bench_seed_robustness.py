"""Seed robustness — the paper's headline orderings across RNG re-rolls.

A claim that holds for one seed proves little.  This bench re-runs the
core comparisons under several seeds and asserts the *orderings* (not
the exact numbers) hold every time:

- Figure 7a: C-Saw < Lantern < Tor on a DNS-blocked page;
- Figure 1b: HTTPS local fix beats Tor;
- Table 6: median PLT non-decreasing in the probe probability p.
"""

import pytest

from conftest import run_once
from repro.analysis import mean, render_table
from repro.analysis.robustness import claim_holds
from repro.censor.actions import DnsAction, DnsVerdict
from repro.censor.policy import Matcher, Rule
from repro.circumvent import HttpsTransport, LanternSystem
from repro.core import CSawClient, CSawConfig
from repro.workloads.scenarios import pakistan_case_study

SEEDS = (11, 22, 33, 44, 55)
ACCESSES = 20


def fig7a_means(seed):
    scenario = pakistan_case_study(seed=seed, with_proxy_fleet=False)
    world = scenario.world
    hostname = f"rb-dnsblocked-{seed}.example.com"
    world.web.add_site(hostname, location="us-east")
    world.web.add_page(f"http://{hostname}/", size_bytes=300_000)
    policy = world.network.ases[scenario.isp_a.asn].censor.policy
    policy.add_rule(
        Rule(matcher=Matcher(domains={hostname}),
             dns=DnsVerdict(DnsAction.NXDOMAIN))
    )
    url = f"http://{hostname}/"

    client = CSawClient(
        world, f"rb-csaw-{seed}", [scenario.isp_a],
        transports=scenario.make_transports(
            f"rb-csaw-{seed}", include=["public-dns", "https", "tor"]
        ),
    )
    csaw_plts = []

    def csaw_flow():
        for _ in range(ACCESSES):
            response = yield from client.request(url)
            csaw_plts.append(response.plt)
            yield response.measurement_process

    world.run_process(csaw_flow())

    lantern_host, lantern_access = world.add_client(
        f"rb-lantern-{seed}", [scenario.isp_a]
    )
    lantern = LanternSystem(scenario.lantern_transport(f"rb-l-{seed}"))
    lantern_plts = []

    def lantern_flow():
        for _ in range(ACCESSES):
            ctx = world.new_ctx(lantern_host, lantern_access, stream="rb-l")
            result = yield from lantern.fetch(world, ctx, url)
            if result.ok:
                lantern_plts.append(result.elapsed)

    world.run_process(lantern_flow())

    tor_host, tor_access = world.add_client(f"rb-tor-{seed}", [scenario.isp_a])
    tor = scenario.tor_transport(f"rb-tor-{seed}", tor_rotation=120.0)
    tor_plts = []

    def tor_flow():
        for _ in range(ACCESSES):
            ctx = world.new_ctx(tor_host, tor_access, stream="rb-t")
            result = yield from tor.fetch(world, ctx, url)
            if result.ok:
                tor_plts.append(result.elapsed)

    world.run_process(tor_flow())
    return (
        mean(csaw_plts[1:]),
        mean(lantern_plts[1:]),
        mean(tor_plts[1:]),
    )


def https_vs_tor(seed):
    scenario = pakistan_case_study(seed=seed, with_proxy_fleet=False)
    world = scenario.world
    url = scenario.urls["youtube"]
    client, access = world.add_client(f"rb2-{seed}", [scenario.isp_a])
    https = HttpsTransport()
    tor = scenario.tor_transport(f"rb2-tor-{seed}", tor_rotation=120.0)
    h_plts, t_plts = [], []

    def flow():
        for _ in range(ACCESSES):
            ctx = world.new_ctx(client, access, stream="rb2")
            a = yield from https.fetch(world, ctx, url)
            b = yield from tor.fetch(world, ctx, url)
            if a.ok:
                h_plts.append(a.elapsed)
            if b.ok:
                t_plts.append(b.elapsed)

    world.run_process(flow())
    return mean(h_plts), mean(t_plts)


def test_headline_orderings_hold_across_seeds(benchmark, report):
    def experiment():
        fig7 = claim_holds(
            fig7a_means, lambda m: m[0] < m[1] < m[2], SEEDS
        )
        fig1b = claim_holds(
            https_vs_tor, lambda m: m[0] < 0.6 * m[1], SEEDS
        )
        return fig7, fig1b

    fig7, fig1b = run_once(benchmark, experiment)
    rows = [
        ["Fig 7a: C-Saw < Lantern < Tor (means)",
         f"{fig7['fraction']:.0%}", str(fig7["failures"] or "-")],
        ["Fig 1b: HTTPS < 0.6 x Tor (means)",
         f"{fig1b['fraction']:.0%}", str(fig1b["failures"] or "-")],
    ]
    report(render_table(
        ["claim", "holds across seeds", "failing seeds"],
        rows,
        title=f"Seed robustness — headline orderings over seeds {SEEDS}",
    ))
    assert fig7["fraction"] == 1.0, fig7
    assert fig1b["fraction"] == 1.0, fig1b
