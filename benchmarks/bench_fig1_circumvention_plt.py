"""Figure 1 — PLT comparisons motivating data-driven circumvention (§2.3).

(a) HTTPS/Domain-Fronting vs ten static proxies, YouTube homepage
    (~360 KB), 200 back-to-back runs: the direct method beats every proxy
    and the congested proxies (Germany-1, UK, Japan) show wild variance.
(b) HTTPS local-fix vs Tor (several exit locations): HTTPS wins clearly.
(c) Lantern vs "IP as hostname" for a ~50 KB keyword-filtered porn page:
    Lantern is ~1.5× slower.
"""

import pytest

from conftest import run_once
from repro.analysis import percentile, render_table, summarize
from repro.circumvent import DomainFrontingTransport, HttpsTransport, IpAsHostnameTransport
from repro.workloads.scenarios import FRONT, pakistan_case_study

RUNS = 200


def collect_plts(scenario, transport, isp, url, runs=RUNS, stream="fig1"):
    world = scenario.world
    client, access = world.add_client(
        f"fig1-{transport.name}-{isp.asn}-{stream}"[:60], [isp]
    )
    plts = []

    def one():
        ctx = world.new_ctx(client, access, stream=f"{stream}/{transport.name}")
        result = yield from transport.fetch(world, ctx, url)
        if result.ok:
            plts.append(result.elapsed)

    for _ in range(runs):
        world.run_process(one())
    return plts


def run_fig1a():
    scenario = pakistan_case_study(seed=101)
    url = scenario.urls["youtube"]
    series = {
        "HTTPS/DF": collect_plts(
            scenario, DomainFrontingTransport(FRONT), scenario.isp_b, url,
            stream="a-df",
        )
    }
    for proxy in scenario.proxy_transports:
        label = proxy.proxy_host.tags["label"]
        series[label] = collect_plts(
            scenario, proxy, scenario.isp_b, url, stream=f"a-{label}"
        )
    return series


def run_fig1b():
    scenario = pakistan_case_study(seed=102, with_proxy_fleet=False)
    url = scenario.urls["youtube"]
    series = {
        "HTTPS": collect_plts(
            scenario, HttpsTransport(), scenario.isp_a, url, stream="b-https"
        )
    }
    for location in ("germany", "netherlands", "france", "us-east", "japan"):
        tor = scenario.tor_transport(f"fig1b-{location}",
                                     tor_exit_location=location,
                                     tor_rotation=600.0)
        series[f"Tor (exit {location})"] = collect_plts(
            scenario, tor, scenario.isp_a, url, stream=f"b-{location}"
        )
    return series


def run_fig1c():
    scenario = pakistan_case_study(seed=103, with_proxy_fleet=False)
    url = scenario.urls["porn"]
    return {
        "IP as hostname": collect_plts(
            scenario, IpAsHostnameTransport(), scenario.isp_a, url, stream="c-ip"
        ),
        "Lantern": collect_plts(
            scenario, scenario.lantern_transport("fig1c"), scenario.isp_a, url,
            stream="c-lantern",
        ),
    }


def series_table(series, title):
    rows = []
    for name, values in series.items():
        if not values:
            rows.append([name, 0, "-", "-", "-", "-"])
            continue
        s = summarize(values)
        rows.append(
            [name, s.count, f"{s.p50:.2f}", f"{s.mean:.2f}", f"{s.p90:.2f}",
             f"{s.p99:.2f}"]
        )
    return render_table(
        ["method", "n", "p50 (s)", "mean (s)", "p90 (s)", "p99 (s)"],
        rows,
        title=title,
    )


def test_fig1a_https_df_vs_static_proxies(benchmark, report):
    series = run_once(benchmark, run_fig1a)
    report(series_table(
        series,
        "Figure 1a — HTTPS/DF vs static proxies (YouTube ~360 KB, "
        f"{RUNS} runs)\npaper: the direct HTTPS/DF method beats every "
        "static proxy; Germany-1/UK/Japan vary wildly",
    ))
    df_median = percentile(series["HTTPS/DF"], 50)
    for label, values in series.items():
        if label == "HTTPS/DF":
            continue
        assert df_median < percentile(values, 50), f"DF should beat {label}"
    # Congested proxies show far heavier tails than the calm ones.
    hot_spread = percentile(series["Germany-1"], 95) - percentile(series["Germany-1"], 50)
    calm_spread = percentile(series["Germany-2"], 95) - percentile(series["Germany-2"], 50)
    assert hot_spread > 2 * calm_spread


def test_fig1b_https_vs_tor(benchmark, report):
    series = run_once(benchmark, run_fig1b)
    report(series_table(
        series,
        f"Figure 1b — HTTPS local-fix vs Tor exits (YouTube, {RUNS} runs)\n"
        "paper: HTTPS yields significantly lower PLTs than every Tor exit",
    ))
    https_median = percentile(series["HTTPS"], 50)
    for label, values in series.items():
        if label == "HTTPS" or not values:
            continue
        assert https_median < 0.6 * percentile(values, 50), label


def test_fig1c_lantern_vs_ip_hostname(benchmark, report):
    series = run_once(benchmark, run_fig1c)
    report(series_table(
        series,
        f"Figure 1c — Lantern vs IP-as-hostname (~50 KB porn page, {RUNS} "
        "runs)\npaper: Lantern is ~1.5x slower than the direct trick",
    ))
    ratio = percentile(series["Lantern"], 50) / percentile(
        series["IP as hostname"], 50
    )
    assert ratio > 1.2, f"Lantern/IP ratio {ratio:.2f} too small"
