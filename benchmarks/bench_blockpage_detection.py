"""§4.3.1 — phase-1 block-page heuristic accuracy on the 47-ISP corpus.

paper: ~80 % of block pages classified in phase 1, with zero false
positives on normal pages; the remainder caught by phase 2's size
comparison.
"""

import random

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.censor.blockpages import build_blockpage_corpus, build_normal_corpus
from repro.core.blockpage import phase1_looks_like_blockpage, phase2_is_blockpage

REAL_PAGE_BYTES = 250_000


def run_experiment():
    rng = random.Random(2018)
    blockpages = build_blockpage_corpus(rng, n_isps=47)
    normals = build_normal_corpus(rng, n_pages=400)

    phase1_hits = [s for s in blockpages if phase1_looks_like_blockpage(s.html)]
    false_positives = [h for h in normals if phase1_looks_like_blockpage(h)]
    phase1_misses = [s for s in blockpages if s not in phase1_hits]
    phase2_cleanup = [
        s for s in phase1_misses
        if phase2_is_blockpage(len(s.html), REAL_PAGE_BYTES)
    ]
    normal_phase2_fp = [
        h for h in normals if phase2_is_blockpage(len(h), len(h))
    ]
    return {
        "n_blockpages": len(blockpages),
        "n_normals": len(normals),
        "phase1_recall": len(phase1_hits) / len(blockpages),
        "phase1_false_positives": len(false_positives),
        "phase2_cleanup": len(phase2_cleanup),
        "phase2_total_recall": (len(phase1_hits) + len(phase2_cleanup))
        / len(blockpages),
        "phase2_normal_fp": len(normal_phase2_fp),
    }


def test_blockpage_detector_accuracy(benchmark, report):
    stats = run_once(benchmark, run_experiment)
    rows = [
        ["block pages in corpus (ISPs)", stats["n_blockpages"]],
        ["normal pages in corpus", stats["n_normals"]],
        ["phase-1 recall", f"{stats['phase1_recall']:.0%} (paper: ~80%)"],
        ["phase-1 false positives", f"{stats['phase1_false_positives']} (paper: 0)"],
        ["phase-2 catches of phase-1 misses", stats["phase2_cleanup"]],
        ["two-phase total recall", f"{stats['phase2_total_recall']:.0%}"],
        ["phase-2 false positives (same-size pages)", stats["phase2_normal_fp"]],
    ]
    report(render_table(
        ["metric", "value"], rows,
        title="Block-page detection — 2-phase algorithm on the 47-ISP corpus",
    ))
    assert 0.7 <= stats["phase1_recall"] <= 0.9
    assert stats["phase1_false_positives"] == 0
    assert stats["phase2_total_recall"] == 1.0
    assert stats["phase2_normal_fp"] == 0
