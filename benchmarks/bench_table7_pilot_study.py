"""Table 7 — the deployment study, simulated at full scale.

123 users across 16 ASes browse a 1700-site corpus for three simulated
months; the global database accumulates their crowdsourced measurements.
paper:  123 users · 997 blocked URLs · 420 blocked domains · 16 ASes ·
        5 blocking types · 376 DNS / 114 TCP-timeout / 475 block-page ·
        1787 unique updates · plus the CDN-blocking discovery (§7.4).
"""

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.core.analytics import MeasurementAnalytics
from repro.workloads.pilot import PilotConfig, PilotStudy

PAPER_ROWS = {
    "No. of users": 123,
    "No. of unique blocked URLs accessed": 997,
    "No. of unique blocked domains accessed": 420,
    "No. of unique ASes": 16,
    "Distinct types of blocking observed": 5,
    "No. of URLs experiencing DNS blocking": 376,
    "No. of URLs experiencing TCP connection timeout": 114,
    "No. of URLs for which a block page was returned": 475,
    "No. of unique updates": 1787,
    "CDN domains found blocked (§7.4 finding)": 1,
}


def run_experiment():
    study = PilotStudy(PilotConfig(seed=7))
    report = study.run()
    return report, study


def test_table7_pilot_study(benchmark, report):
    pilot, study = run_once(benchmark, run_experiment)
    rows = [
        [label, PAPER_ROWS.get(label, "-"), value]
        for label, value in pilot.rows()
    ]
    # Consumer analytics (§4.2) over the collected dataset: reporter
    # counts per AS and the §2.3 heterogeneity insight, quantified.
    analytics = MeasurementAnalytics(study.server)
    per_as = analytics.reporters_per_as()
    varied = analytics.mechanism_heterogeneity()
    extra_rows = [
        ["ASes with >= 5 reporters (analytics)", "-",
         sum(1 for n in per_as.values() if n >= 5)],
        ["domains blocked *differently* across ASes (analytics)", "-",
         len(varied)],
    ]
    report(render_table(
        ["insight", "paper", "measured"],
        rows + extra_rows,
        title="Table 7 — insights from the (simulated) deployment study",
    ))
    # The §2.3 motivation, observed in crowdsourced data: plenty of
    # domains block differently across ASes.
    assert len(varied) >= 20

    assert pilot.users == 123
    assert pilot.unique_ases == 16
    # Scale of discovery comparable to the paper's.
    assert 600 <= pilot.unique_blocked_urls <= 1600
    assert 300 <= pilot.unique_blocked_domains <= 550
    assert pilot.distinct_block_types >= 5
    # Mechanism ordering: block pages most common, DNS second, TCP third.
    assert pilot.urls_blockpage > pilot.urls_dns_blocked > pilot.urls_tcp_timeout
    # The CDN-blocking discovery (missed by prior target-list studies).
    assert pilot.cdn_domains_detected >= 1
    assert pilot.unique_updates >= pilot.unique_blocked_urls
