"""Figure 6 — (a) how many redundant requests are enough, (b) URL
aggregation savings.

(a) 1, 2, or 3 duplicate requests for an uncensored page, each over its
    own fresh Tor circuit; the user sees the fastest copy.  paper: going
    from 1→2 improves the median by ~30 %; a third copy does not improve
    the median but inflates the 95th percentile (client load).
(b) Crawling the Alexa-top-15-style sites with aggregation on/off:
    ~55 % fewer local_DB records with aggregation.
"""

import pytest

from conftest import run_once
from repro.analysis import percentile, render_table
from repro.circumvent import TorTransport
from repro.core import BlockStatus, LocalDatabase
from repro.workloads.corpus import build_corpus
from repro.workloads.scenarios import pakistan_case_study

RUNS_6A = 120


def run_fig6a():
    scenario = pakistan_case_study(seed=301, with_proxy_fleet=False)
    world = scenario.world
    url = scenario.urls["youtube"]
    client, access = world.add_client("fig6a-client", [scenario.isp_clean])
    series = {}
    for copies in (1, 2, 3):
        transport = TorTransport(
            scenario.tor.client(f"fig6a-{copies}"), fresh_circuit_per_fetch=True
        )
        plts = []

        def one_round():
            ctx = world.new_ctx(client, access, stream=f"fig6a/{copies}")

            def copy():
                ctx.load.enter()
                try:
                    result = yield from transport.fetch(world, ctx, url)
                finally:
                    ctx.load.exit()
                return result

            t0 = world.env.now
            procs = [world.env.process(copy()) for _ in range(copies)]
            yield world.env.any_of(procs)  # fastest copy wins
            plts.append(world.env.now - t0)
            yield world.env.all_of(procs)  # drain the losers

        for _ in range(RUNS_6A):
            world.run_process(one_round())
        series[copies] = plts
    return series


def test_fig6a_redundant_request_count(benchmark, report):
    series = run_once(benchmark, run_fig6a)
    rows = [
        [f"{k} request(s)", f"{percentile(v, 50):.2f}",
         f"{percentile(v, 95):.2f}"]
        for k, v in series.items()
    ]
    report(render_table(
        ["redundant requests", "median PLT (s)", "p95 PLT (s)"],
        rows,
        title=f"Figure 6a — duplicate requests over separate Tor circuits "
        f"({RUNS_6A} runs)\npaper: 1→2 improves median ~30%; a 3rd copy "
        "does not improve the median but inflates the tail",
    ))
    m1 = percentile(series[1], 50)
    m2 = percentile(series[2], 50)
    m3 = percentile(series[3], 50)
    # The second copy buys a clear median win (paper: ~30 %; our Tor
    # variance model yields ~10 % — direction preserved).
    assert m2 < 0.93 * m1
    # The third copy buys little median and costs tail (client load).
    assert m3 > 0.8 * m2
    assert percentile(series[3], 95) > 0.95 * percentile(series[2], 95)


def run_fig6b():
    corpus = build_corpus(n_sites=15, seed=302, cdn_probability=0.0)
    results = {}
    for aggregation in (False, True):
        db = LocalDatabase(ttl=1e9, aggregation=aggregation)
        for site in corpus.sites:
            # Crawl every page of the site; all uncensored (the paper's
            # Alexa-top-15 crawl found them unblocked).
            for path in site.page_paths:
                db.record_measurement(
                    f"http://{site.hostname}{path}",
                    BlockStatus.NOT_BLOCKED,
                    [],
                )
        results[aggregation] = db.record_count
    return results


def test_fig6b_url_aggregation(benchmark, report):
    results = run_once(benchmark, run_fig6b)
    reduction = 1.0 - results[True] / results[False]
    report(render_table(
        ["mode", "local_DB records"],
        [
            ["no aggregation", results[False]],
            ["with aggregation", results[True]],
            ["reduction", f"{reduction:.0%} (paper: ~55%)"],
        ],
        title="Figure 6b — URL aggregation on an Alexa-top-15-style crawl",
    ))
    assert results[True] == 15  # one base record per unblocked site
    assert 0.40 <= reduction <= 0.85
