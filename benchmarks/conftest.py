"""Shared plumbing for the benchmark harness.

Every bench regenerates one table or figure from the paper.  Paper-vs-
measured tables are written to ``benchmarks/results/*.txt`` and echoed to
the terminal (bypassing pytest capture), so ``pytest benchmarks/
--benchmark-only`` leaves both a timing table and the reproduction
artefacts behind.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capfd, request):
    """Callable: report(text) — echo to the terminal and persist."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(text: str) -> None:
        name = request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        with capfd.disabled():
            print(f"\n{text}\n")

    return _report


def run_once(benchmark, fn):
    """Run a whole experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
