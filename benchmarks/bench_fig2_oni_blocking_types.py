"""Figure 2 — fractions of blocking types across ISPs in four countries.

Regenerated with C-Saw's own detection pipeline over per-AS mechanism
mixtures qualitatively matched to the ONI data (see
``repro.workloads.oni`` for the substitution rationale).
"""

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.workloads.oni import FIG2_CATEGORIES, OniSweep


def run_experiment():
    sweep = OniSweep(seed=13, domains_per_as=80)
    measured = sweep.run()
    return measured, sweep.ground_truth(), sweep


def test_fig2_blocking_type_fractions(benchmark, report):
    measured, truth, sweep = run_once(benchmark, run_experiment)

    rows = []
    for asn, mix in measured.items():
        spec = sweep.spec_for(asn)
        rows.append(
            [f"AS{asn}", spec.country]
            + [f"{mix[c]:.2f} ({truth[asn][c]:.2f})" for c in FIG2_CATEGORIES]
        )
    report(render_table(
        ["AS", "country"] + [f"{c}" for c in FIG2_CATEGORIES],
        rows,
        title="Figure 2 — fraction of blocking types per AS, "
        "measured (ground truth in parentheses)\n"
        "paper: DNS and HTTP blocking are common everywhere but the "
        "distribution varies across ISPs and countries",
    ))

    for asn, mix in measured.items():
        assert sum(mix.values()) == pytest.approx(1.0, abs=1e-6)
        # Measured fractions track ground truth within sampling noise.
        for category in FIG2_CATEGORIES:
            assert mix[category] == pytest.approx(
                truth[asn][category], abs=0.15
            ), (asn, category)
    # Heterogeneity: Vietnamese ASes are No-DNS-dominated, Yemeni ASes
    # block-page-dominated, Indonesian ASes DNS-redirect-dominated.
    assert max(measured[18403], key=measured[18403].get) == "No DNS"
    assert max(measured[30873], key=measured[30873].get) == "Block Page w/o Redir"
    assert max(measured[4795], key=measured[4795].get) == "DNS Redir"
