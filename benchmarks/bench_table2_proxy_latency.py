"""Table 2 — ping latencies from the measurement vantage to the proxies.

The simulator's geography is calibrated against these numbers, so this
bench doubles as a calibration check: measured RTTs should sit within
jitter of the paper's values.
"""

import pytest

from conftest import run_once
from repro.analysis import mean, render_table
from repro.workloads.scenarios import pakistan_case_study

PAPER_LATENCIES_MS = {
    "UK": 228,
    "Netherlands": 172,
    "Japan": 387,
    "US-1": 329,
    "US-2": 429,
    "US-3": 160,
    "Germany-1": 309,
    "Germany-2": 174,
}
PINGS = 50


def run_experiment():
    scenario = pakistan_case_study(seed=7)
    world = scenario.world
    client, access = world.add_client("ping-client", [scenario.isp_a])
    rng = world.rngs.stream("table2")
    measured = {}
    for proxy in scenario.proxy_transports:
        label = proxy.proxy_host.tags["label"]
        latency = world.network.latency_between(client, proxy.proxy_host)
        samples = [
            (latency.sample_rtt(rng) + access.access_rtt) * 1000.0
            for _ in range(PINGS)
        ]
        measured[label] = mean(samples)
    # The paper also quotes ~186 ms to YouTube from the same vantage.
    youtube = world.network.hosts_by_name["www.youtube.com"]
    measured["YouTube"] = mean(
        [
            (world.network.latency_between(client, youtube).sample_rtt(rng)
             + access.access_rtt) * 1000.0
            for _ in range(PINGS)
        ]
    )
    return measured


def test_table2_proxy_ping_latencies(benchmark, report):
    measured = run_once(benchmark, run_experiment)
    rows = []
    for label, paper_ms in PAPER_LATENCIES_MS.items():
        rows.append([label, paper_ms, f"{measured[label]:.0f}"])
    rows.append(["YouTube", 186, f"{measured['YouTube']:.0f}"])
    report(render_table(
        ["proxy", "paper avg ping (ms)", "measured avg ping (ms)"],
        rows,
        title=f"Table 2 — ping latency to static proxies ({PINGS} pings each)",
    ))
    for label, paper_ms in PAPER_LATENCIES_MS.items():
        # Within 35 % of the paper's value (proxies carry load jitter).
        assert measured[label] == pytest.approx(paper_ms, rel=0.35), label
    assert measured["YouTube"] == pytest.approx(186, rel=0.2)
