"""§7.5 — “C-Saw in the wild”: the Twitter/Instagram blocking wave.

Replays the November 2017 event timeline: two ASes block Twitter within
minutes of each other using *different* mechanisms, three ASes block
Instagram via DNS the next day.  The bench checks that C-Saw's
crowdsourced pipeline surfaces every event, with per-AS mechanism labels,
shortly after onset.
"""

import pytest

from conftest import run_once
from repro.analysis import render_table
from repro.workloads.events import BlockingWave


def run_experiment():
    wave = BlockingWave(seed=5, users_per_as=4)
    observations = wave.run()
    return wave, observations


def test_wild_blocking_wave(benchmark, report):
    wave, observations = run_once(benchmark, run_experiment)
    rows = [
        [f"t+{o.detected_at / 3600:.1f}h", o.service, f"AS {o.asn}", o.symptom]
        for o in observations
    ]
    report(render_table(
        ["detected", "service", "AS", "response"],
        rows,
        title="§7.5 — blocking-wave measurements collected by C-Saw\n"
        "paper: Twitter blocked differently across ASes (timeout vs block "
        "page); Instagram DNS-blocked from three ASes the next morning",
    ))

    assert len(observations) == 5
    by_key = {(o.asn, o.service): o for o in observations}
    assert by_key[(38193, "Twitter")].symptom == "HTTP_GET_TIMEOUT"
    assert by_key[(17557, "Twitter")].symptom == "HTTP_GET_BLOCKPAGE"
    instagram = [o for o in observations if o.service == "Instagram"]
    assert len(instagram) == 3
    assert all(o.symptom == "DNS blocking" for o in instagram)
    # Detection promptness: every event surfaced within a few hours.
    onsets = {
        (e.asn, "Twitter" if "twitter" in e.domain else "Instagram"): e.time
        for e in wave.events
    }
    for o in observations:
        lag = o.detected_at - onsets[(o.asn, o.service)]
        assert 0 <= lag < 6 * 3600.0
