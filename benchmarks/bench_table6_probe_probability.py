"""Table 6 — impact of the direct-path probe probability p on median PLT.

A blocked URL is served through Tor; with probability p each access also
probes the direct path, which competes with the tunnel for the client's
resources.  paper: median PLT grows from 5.6 s (p=0) to 8.1 s (p=0.75);
recommendation p ≤ 0.25.
"""

import pytest

from conftest import run_once
from repro.analysis import percentile, render_table
from repro.censor.actions import IpAction, IpVerdict
from repro.censor.policy import Matcher, Rule
from repro.core import CSawClient, CSawConfig
from repro.workloads.scenarios import pakistan_case_study

P_VALUES = (0.0, 0.25, 0.5, 0.75)
ACCESSES = 60
PAPER_MEDIANS = {0.0: 5.6, 0.25: 6.9, 0.5: 7.5, 0.75: 8.1}


def run_experiment():
    scenario = pakistan_case_study(seed=401, with_proxy_fleet=False)
    world = scenario.world
    # An IP-blackholed page: no local fix applies, Tor is the only way,
    # and every probe burns the full 21 s TCP timeout in the background.
    hostname = "t6-blocked.example.com"
    world.web.add_site(hostname, location="us-east")
    world.web.add_page(f"http://{hostname}/", size_bytes=360_000)
    url = f"http://{hostname}/"
    host_ip = world.network.hosts_by_name[hostname].ip
    policy = world.network.ases[scenario.isp_a.asn].censor.policy
    policy.add_rule(
        Rule(matcher=Matcher(domains={hostname}, ips={host_ip}),
             ip=IpVerdict(IpAction.DROP))
    )

    medians = {}
    for p in P_VALUES:
        client = CSawClient(
            world,
            f"t6-client-p{int(p * 100)}",
            [scenario.isp_a],
            transports=scenario.make_transports(
                f"t6-p{int(p * 100)}", include=["tor"]
            ),
            config=CSawConfig(probe_probability=p, explore_every_n=10**6),
        )
        plts = []

        def one():
            response = yield from client.request(url)
            plts.append(response.plt)
            yield response.measurement_process

        # Seed the local_DB with the blocked status first.
        world.run_process(one())
        plts.clear()
        for _ in range(ACCESSES):
            world.run_process(one())
        medians[p] = percentile(plts, 50)
    return medians


def test_table6_probe_probability(benchmark, report):
    medians = run_once(benchmark, run_experiment)
    rows = [
        [f"{p:g}", f"{PAPER_MEDIANS[p]:g}", f"{medians[p]:.2f}"]
        for p in P_VALUES
    ]
    report(render_table(
        ["p", "paper median PLT (s)", "measured median PLT (s)"],
        rows,
        title=f"Table 6 — direct-path probe probability ({ACCESSES} accesses "
        "of an IP-blocked URL via Tor)\npaper: higher p inflates PLT; "
        "recommend p <= 0.25",
    ))
    # Monotone non-decreasing in p, with a visible total increase.
    assert medians[0.25] >= medians[0.0] * 0.98
    assert medians[0.75] > medians[0.0] * 1.05
    assert medians[0.75] >= medians[0.25] * 0.98
