"""Ablations — what each C-Saw design choice buys.

1. Selective redundancy (§4.3.1): duplicating *every* request (instead of
   only not-measured ones) inflates PLTs and data usage on an unblocked
   browsing workload.
2. Exploration (§4.3.2, n = 5): without the every-n-th random pick, a
   relay that *improves* after a bad start is never rediscovered.
3. Multihoming pinning (§4.4): without it, a URL blocked by only one of
   two providers oscillates between direct (sometimes broken) and relay.
4. Voting (§5): a Sybil reporter floods the global DB; the confidence
   filter (min reporters) keeps honest clients' views clean, at no cost
   to true entries.
"""

import pytest

from conftest import run_once
from repro.analysis import mean, render_table
from repro.censor.actions import HttpAction, HttpVerdict
from repro.censor.policy import Matcher, Rule
from repro.core import (
    BlockStatus,
    CSawClient,
    CSawConfig,
    ReportItem,
    ServerDB,
)
from repro.core.records import BlockType
from repro.runner import TrialSpec, merge_values, run_trials
from repro.workloads.scenarios import pakistan_case_study


# --- 1. selective redundancy -------------------------------------------------

def run_selective_redundancy():
    scenario = pakistan_case_study(seed=601, with_proxy_fleet=False)
    world = scenario.world
    url = scenario.urls["small-unblocked"]

    def browse(client, forget):
        plts = []

        def one():
            if forget:
                client.local_db.clear()  # ablation: nothing is remembered
            response = yield from client.request(url)
            plts.append(response.plt)
            yield response.measurement_process

        for _ in range(40):
            world.run_process(one())
        return plts[1:]

    selective = CSawClient(
        world, "ab1-selective", [scenario.isp_a],
        transports=scenario.make_transports("ab1-selective", include=["tor"]),
    )
    always = CSawClient(
        world, "ab1-always", [scenario.isp_a],
        transports=scenario.make_transports("ab1-always", include=["tor"]),
    )
    return {
        "selective (C-Saw)": browse(selective, forget=False),
        "always-redundant": browse(always, forget=True),
    }


def test_ablation_selective_redundancy(benchmark, report):
    series = run_once(benchmark, run_selective_redundancy)
    rows = [
        [label, f"{mean(v):.2f}"] for label, v in series.items()
    ]
    report(render_table(
        ["mode", "mean PLT (s), unblocked page"],
        rows,
        title="Ablation 1 — selective redundancy: duplicate only "
        "not-measured URLs",
    ))
    assert mean(series["selective (C-Saw)"]) < mean(series["always-redundant"])


# --- 2. exploration ---------------------------------------------------------

def _exploration_arm(explore_n):
    """One independent arm: fresh scenario, one exploration setting."""
    scenario = pakistan_case_study(seed=602, with_proxy_fleet=False)
    world = scenario.world
    url = scenario.urls["youtube"]
    client = CSawClient(
        world, f"ab2-{explore_n}", [scenario.isp_b],
        transports=scenario.make_transports(
            f"ab2-{explore_n}", include=["tor", "lantern"]
        ),
        config=CSawConfig(explore_every_n=explore_n,
                          probe_probability=0.0),
    )
    # Phase 1: Lantern's trusted proxies are overloaded -> Tor looks
    # better and the EWMA locks onto it.
    lantern_hosts = [p for p in scenario.lantern.proxies]
    saved = [(h.extra_rtt, h.bandwidth_bps) for h in lantern_hosts]
    for host in lantern_hosts:
        host.extra_rtt = 3.0
        host.bandwidth_bps = 1e6

    def one(plts):
        response = yield from client.request(url)
        plts.append(response.plt)
        yield response.measurement_process

    warmup = []
    for _ in range(10):
        world.run_process(one(warmup))
    # Phase 2: the proxies recover; only exploration can notice.
    for host, (extra, bw) in zip(lantern_hosts, saved):
        host.extra_rtt = extra
        host.bandwidth_bps = bw
    after = []
    for _ in range(60):
        world.run_process(one(after))
    return after[20:]  # steady state after recovery


def run_exploration():
    # The two arms share nothing, so fan them out through the runner.
    specs = [
        TrialSpec(name=label, fn=_exploration_arm,
                  kwargs={"explore_n": explore_n})
        for explore_n, label in ((5, "with exploration (n=5)"),
                                 (10**6, "no exploration"))
    ]
    return merge_values(run_trials(specs))


def test_ablation_exploration(benchmark, report):
    series = run_once(benchmark, run_exploration)
    rows = [[label, f"{mean(v):.2f}"] for label, v in series.items()]
    report(render_table(
        ["mode", "mean PLT (s) after relay recovery"],
        rows,
        title="Ablation 2 — every-5th-access exploration rediscovers an "
        "improved relay",
    ))
    assert (
        mean(series["with exploration (n=5)"])
        < mean(series["no exploration"])
    )


# --- 3. multihoming pinning ---------------------------------------------------

def _multihoming_arm(pin):
    """One independent arm: fresh scenario, pinning on or off."""
    scenario = pakistan_case_study(seed=603, with_proxy_fleet=False)
    world = scenario.world
    url = "http://only-a.example.com/"
    world.web.add_site("only-a.example.com", location="us-east")
    world.web.add_page(url, size_bytes=120_000)
    policy = world.network.ases[scenario.isp_a.asn].censor.policy
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"only-a.example.com"}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT,
                blockpage_ip=scenario.blockpage_a.ip,
            ),
        )
    )
    # Relay-only transports: a local fix would ride the direct path
    # through either provider and mask the oscillation entirely.
    client = CSawClient(
        world, f"ab3-{pin}", [scenario.isp_a, scenario.isp_b],
        transports=scenario.make_transports(
            f"ab3-{pin}", include=["tor", "lantern"]
        ),
        config=CSawConfig(probe_probability=1.0),
    )
    if not pin:
        client.measurement.multihoming = None  # ablation

    def warm():
        for _ in range(10):
            yield from client.multihoming.probe_once(client.new_ctx())

    world.run_process(warm())
    flips = []
    last_status = None

    def one(plts):
        nonlocal last_status
        response = yield from client.request(url)
        plts.append(response.plt)
        yield response.measurement_process
        status = client.local_db.lookup(url)[0]
        if last_status is not None and status is not last_status:
            flips.append(world.env.now)
        last_status = status

    plts = []
    for _ in range(40):
        world.run_process(one(plts))
    return (len(flips), mean(plts[5:]))


def run_multihoming():
    specs = [
        TrialSpec(name=label, fn=_multihoming_arm, kwargs={"pin": pin})
        for pin, label in ((True, "with pinning (C-Saw)"),
                           (False, "no pinning"))
    ]
    return merge_values(run_trials(specs))


def test_ablation_multihoming_pinning(benchmark, report):
    results = run_once(benchmark, run_multihoming)
    rows = [
        [label, flips, f"{plt:.2f}"]
        for label, (flips, plt) in results.items()
    ]
    report(render_table(
        ["mode", "status flips", "mean PLT (s)"],
        rows,
        title="Ablation 3 — multihoming strategy pinning stops "
        "blocked/unblocked oscillation",
    ))
    pinned_flips, _ = results["with pinning (C-Saw)"]
    unpinned_flips, _ = results["no pinning"]
    assert pinned_flips < unpinned_flips


# --- 4. voting vs naive trust under a Sybil flood ------------------------------

def run_voting_attack():
    server = ServerDB()
    honest = [server.register(now=float(i)) for i in range(8)]
    # CAPTCHA rate-limits the attacker to a handful of identities.
    sybils = [server.register(now=100.0 + i) for i in range(2)]

    real_urls = [f"http://truly-blocked-{i}.example/" for i in range(10)]
    for uuid in honest:
        server.post_update(
            uuid,
            [
                ReportItem(url=url, asn=1, stages=(BlockType.BLOCK_PAGE,),
                           measured_at=1.0)
                for url in real_urls
            ],
            now=2.0,
        )
    poison_urls = [f"http://innocent-{i}.example/" for i in range(200)]
    for uuid in sybils:
        server.post_update(
            uuid,
            [
                ReportItem(url=url, asn=1, stages=(BlockType.BLOCK_PAGE,),
                           measured_at=1.0)
                for url in poison_urls
            ],
            now=3.0,
        )

    poison = set(poison_urls)

    def split(entries):
        return (
            len([e for e in entries if e.url in poison]),
            len([e for e in entries if e.url not in poison]),
        )

    return {
        "naive": split(server.blocked_for_as(1, now=4.0)),
        # Reporter count alone is defeated by two colluding identities...
        "min 3 reporters": split(
            server.blocked_for_as(1, now=4.0, min_reporters=3)
        ),
        # ...while vote mass punishes them for spreading over 200 URLs
        # (each sybil contributes only 1/200 per entry).
        "min 0.05 votes": split(
            server.blocked_for_as(1, now=4.0, min_votes=0.05)
        ),
    }


def test_ablation_voting_vs_sybil(benchmark, report):
    results = run_once(benchmark, run_voting_attack)
    rows = [
        [label, poisoned, genuine]
        for label, (poisoned, genuine) in results.items()
    ]
    report(render_table(
        ["download policy", "poisoned entries accepted", "genuine entries kept"],
        rows,
        title="Ablation 4 — voting/confidence filter under a Sybil flood "
        "(2 fake identities, 200 false URLs each)",
    ))
    assert results["naive"][0] == 200  # fully poisoned without the filter
    # Two colluding identities beat a bare reporter-count threshold only
    # if the threshold is below their clique size.
    assert results["min 3 reporters"][0] == 0
    # Vote mass works even against cliques: spreading over 200 URLs
    # dilutes each entry to s = 2/200 = 0.01.
    assert results["min 0.05 votes"][0] == 0
    assert results["min 0.05 votes"][1] == 10  # no collateral damage
