"""Library performance: event-kernel and policy-lookup throughput.

Not a paper artefact — a regression guard for the substrate itself.  The
pilot study pushes ~10^6 events through the kernel and consults censor
policies on every protocol stage; if either slows down an order of
magnitude, every experiment in this repo does too.
"""

import json
import pathlib

import pytest

from repro.censor.actions import DnsAction, DnsVerdict
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.core.globaldb import ReportItem, ServerDB
from repro.core.records import BlockType
from repro.simnet.engine import Environment

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def run_timer_storm(n_processes=200, ticks=50):
    env = Environment()

    def ticker(delay):
        for _ in range(ticks):
            yield env.timeout(delay)

    for index in range(n_processes):
        env.process(ticker(0.1 + index * 0.001))
    env.run()
    return env.now


def test_kernel_event_throughput(benchmark):
    """~10k timeout events per round."""
    result = benchmark(run_timer_storm)
    assert result > 0


def run_spawn_join_storm(width=40, depth=3):
    env = Environment()

    def node(level):
        if level == 0:
            yield env.timeout(0.01)
            return 1
        children = [env.process(node(level - 1)) for _ in range(3)]
        gathered = yield env.all_of(children)
        return sum(gathered.values())

    roots = [env.process(node(depth)) for _ in range(width)]
    env.run()
    return sum(root.value for root in roots)


def test_kernel_spawn_join_throughput(benchmark):
    """Process trees: spawn, barrier-join, value propagation."""
    total = benchmark(run_spawn_join_storm)
    assert total == 40 * 27  # 3^3 leaves per root


def make_big_policy(n_domains=500):
    policy = CensorPolicy(name="big")
    domains = {f"blocked{i}.example.com" for i in range(n_domains)}
    policy.add_rule(
        Rule(matcher=Matcher(domains=domains),
             dns=DnsVerdict(DnsAction.NXDOMAIN))
    )
    return policy


def test_policy_lookup_throughput(benchmark):
    """Suffix-set domain matching must stay O(#labels) per query."""
    policy = make_big_policy()

    def lookups():
        hits = 0
        for i in range(2000):
            if policy.on_dns_query(f"www.blocked{i % 600}.example.com").action \
                    is DnsAction.NXDOMAIN:
                hits += 1
        return hits

    hits = benchmark(lookups)
    # Three full 600-cycles hit 500 each; the 200-remainder all hit.
    assert hits == 3 * 500 + 200


def make_crowdsourced_server(n_entries=5000, n_ases=10, urls_per_client=25):
    server = ServerDB(entry_ttl=None)
    urls = [f"http://site{i}.example.com/" for i in range(n_entries // n_ases)]
    index = 0
    for asn_offset in range(n_ases):
        asn = 30000 + asn_offset
        for start in range(0, len(urls), urls_per_client):
            uuid = server.register(now=float(index))
            index += 1
            server.post_update(
                uuid,
                [
                    ReportItem(
                        url=url,
                        asn=asn,
                        stages=(BlockType.BLOCK_PAGE,),
                        measured_at=1.0,
                    )
                    for url in urls[start : start + urls_per_client]
                ],
                now=2.0,
            )
    return server


def test_globaldb_pull_throughput(benchmark):
    """Per-AS pulls must scale with the shard, not the whole table."""
    server = make_crowdsourced_server()
    per_as = 5000 // 10

    def pulls():
        total = 0
        for asn_offset in range(10):
            total += len(server.blocked_for_as(30000 + asn_offset, now=3.0))
        return total

    total = benchmark(pulls)
    assert total == 10 * per_as


def test_globaldb_delta_sync_throughput(benchmark):
    """A no-change delta pull must be O(1), not a snapshot rebuild."""
    server = make_crowdsourced_server()
    versions = {
        30000 + off: server.version_for_as(30000 + off) for off in range(10)
    }

    def pulls():
        transferred = 0
        for asn, version in versions.items():
            result = server.sync_for_as(asn, now=3.0, since_version=version)
            assert not result.full
            transferred += result.transferred
        return transferred

    assert benchmark(pulls) == 0


def run_session_request_storm(rounds=10):
    """The full request path: session dispatch, Figure-4 detection,
    circumvention, redundancy, and per-stage trace emission."""
    from repro.core import CSawClient
    from repro.core.config import CSawConfig
    from repro.workloads.scenarios import pakistan_case_study

    scenario = pakistan_case_study(seed=5, with_proxy_fleet=False)
    world = scenario.world
    client = CSawClient(
        world,
        "bench",
        [scenario.isp_a],
        transports=scenario.make_transports("bench"),
        config=CSawConfig(probe_probability=0.0),
    )
    urls = [
        scenario.urls["small-unblocked"],
        scenario.urls["youtube"],
        scenario.urls["table5/tcp-ip"],
    ]
    responses = []

    def storm():
        for _ in range(rounds):
            for url in urls:
                response = yield from client.request(url)
                yield response.measurement_process
                responses.append(response)
        return len(responses)

    served = world.run_process(storm())
    assert served == rounds * len(urls)
    return responses


def test_session_request_throughput(benchmark):
    """End-to-end request path with tracing on — every served response
    must carry a non-empty, monotonically stamped stage trace."""
    responses = benchmark(run_session_request_storm)
    assert responses
    for response in responses:
        trace = response.trace
        assert trace is not None and len(trace) > 0
        stamps = [event.t for event in trace.events]
        assert stamps == sorted(stamps)


# Workloads that never enter the session/measurement layer — the refactor
# budget says the trace bus must be free when no session is running.
ENGINE_FAST_PATH = ("kernel_timer_storm", "kernel_spawn_join_storm")


def _recorded_seconds(label):
    if not BENCH_JSON.exists():
        pytest.skip(f"{BENCH_JSON.name} not present")
    history = json.loads(BENCH_JSON.read_text())
    if label not in history:
        pytest.skip(f"label {label!r} not recorded in {BENCH_JSON.name}")
    return history[label]["seconds"]


class TestSessionLayerOverhead:
    """Guard on the recorded interleaved A/B pair in BENCH_engine.json.

    ``before-session`` (commit c0895d8) and ``after-session`` were
    recorded as interleaved per-workload subprocess pairs — the only
    comparison that holds on a drifting single-core box.  The budget:
    the session layer adds <5% to the engine fast path.  The session
    request storm itself is allowed to pay for tracing (its cost is
    recorded and tracked, not capped here).
    """

    @pytest.mark.parametrize("workload", ENGINE_FAST_PATH)
    def test_fast_path_within_budget(self, workload):
        before = _recorded_seconds("before-session")
        after = _recorded_seconds("after-session")
        ratio = after[workload] / before[workload]
        assert ratio < 1.05, (
            f"{workload}: session layer added {(ratio - 1) * 100:.1f}% "
            f"to the engine fast path (budget 5%)"
        )

    def test_session_storm_cost_is_recorded(self):
        """The request-path cost must be tracked in both labels so the
        trajectory stays visible across PRs."""
        for label in ("before-session", "after-session"):
            assert "session_request_storm" in _recorded_seconds(label)


class TestTracingOffOverhead:
    """``TraceMode.OFF`` must make the session layer's tracing free.

    ``before-session-r2`` re-records the pre-tracing request storm
    (commit c0895d8's code) interleaved with ``after-fleet``'s
    ``session_request_storm_notrace`` — the original ``before-session``
    number is from an earlier, faster epoch of this drifting box and is
    not comparable to anything recorded now.  Budget: the disabled-trace
    path (one predicate check per emission site) stays within 5% of the
    pre-tracing cost.
    """

    def test_notrace_storm_within_budget(self):
        before = _recorded_seconds("before-session-r2")
        after = _recorded_seconds("after-fleet")
        ratio = (
            after["session_request_storm_notrace"]
            / before["session_request_storm"]
        )
        assert ratio < 1.05, (
            f"TraceMode.OFF request storm is {(ratio - 1) * 100:.1f}% over "
            f"the pre-tracing cost (budget 5%)"
        )

    def test_full_trace_cost_stays_recorded(self):
        """Full-mode tracing is allowed to cost — but the price must stay
        visible next to the free path."""
        after = _recorded_seconds("after-fleet")
        assert "session_request_storm" in after
        assert "session_request_storm_notrace" in after
